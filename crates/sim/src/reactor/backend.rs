//! Pluggable reactor backends behind one [`Backend`] trait.
//!
//! The live engine (`mutcon_live::server`) drives every fd operation —
//! register/interest/deregister/wait/accept/read/write/writev/wake —
//! through this seam instead of calling [`Poller`](super::Poller)
//! directly. Two implementations exist:
//!
//! * [`EpollBackend`] — the classic level-triggered epoll reactor,
//!   upgraded with **lazy, coalesced interest tracking**: interest
//!   changes land in a per-token [`InterestLedger`] cell and only the
//!   net desired-vs-kernel diff is flushed as `epoll_ctl(MOD)` once per
//!   event-loop turn, so a read→write→read keep-alive cycle that used to
//!   cost 2–3 `epoll_ctl` syscalls per request costs zero.
//! * [`UringBackend`](super::uring::UringBackend) — a raw-syscall
//!   io_uring reactor (multishot poll + multishot accept readiness,
//!   recv/send/writev submitted as inline-completing SQEs).
//!
//! Selection is by [`BackendKind`], usually from the `MUTCON_LIVE_BACKEND`
//! environment variable; [`create`] falls back from io_uring to epoll
//! (logged once) when the kernel refuses rings, so seccomp'd runners
//! keep working.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::RawFd;
use std::sync::Once;
use std::time::Duration;

use super::{accept_nonblocking, cvt, sys, Event, Events, Interest, Poller, Waker};

/// Environment variable selecting the reactor backend (`epoll` or
/// `io_uring`); unset or unrecognized means epoll.
pub const BACKEND_ENV: &str = "MUTCON_LIVE_BACKEND";

/// Which reactor backend implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Level-triggered epoll with coalesced interest updates.
    Epoll,
    /// Raw-syscall io_uring (multishot poll/accept, inline data SQEs).
    IoUring,
}

impl BackendKind {
    /// Stable lowercase name, as accepted by [`BACKEND_ENV`] and
    /// reported in `/admin/stats`.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::IoUring => "io_uring",
        }
    }

    /// Parses a backend name (`epoll` / `io_uring`, also `uring`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "epoll" => Some(BackendKind::Epoll),
            "io_uring" | "io-uring" | "uring" => Some(BackendKind::IoUring),
            _ => None,
        }
    }

    /// Reads [`BACKEND_ENV`]; unset, empty, or unrecognized → epoll.
    pub fn from_env() -> BackendKind {
        std::env::var(BACKEND_ENV)
            .ok()
            .as_deref()
            .and_then(BackendKind::parse)
            .unwrap_or(BackendKind::Epoll)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Monotonic per-backend syscall-economy counters, snapshotted by the
/// engine once per event-loop turn and exported as deltas into
/// `EngineMetrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Kernel interest operations actually issued (`epoll_ctl` ADD+MOD).
    /// Always zero on io_uring.
    pub epoll_ctl_calls: u64,
    /// Interest transitions absorbed by the ledger before reaching the
    /// kernel (the syscalls the coalescing saved).
    pub interest_coalesced: u64,
    /// Submission-queue entries pushed to the ring. Always zero on epoll.
    pub sqe_submitted: u64,
    /// Completion-queue entries reaped from the ring. Always zero on epoll.
    pub cqe_completed: u64,
}

impl BackendCounters {
    /// `self - prev`, saturating (counters are monotonic, so this is the
    /// activity since `prev` was snapshotted).
    pub fn since(self, prev: BackendCounters) -> BackendCounters {
        BackendCounters {
            epoll_ctl_calls: self.epoll_ctl_calls.saturating_sub(prev.epoll_ctl_calls),
            interest_coalesced: self
                .interest_coalesced
                .saturating_sub(prev.interest_coalesced),
            sqe_submitted: self.sqe_submitted.saturating_sub(prev.sqe_submitted),
            cqe_completed: self.cqe_completed.saturating_sub(prev.cqe_completed),
        }
    }
}

/// A reactor backend: readiness notification plus the data-plane
/// syscalls, so an implementation may route I/O through a ring instead
/// of direct syscalls.
///
/// Contracts the engine relies on:
///
/// * Tokens are small dense integers (slab indices); the backend may
///   index arrays by them.
/// * [`Backend::set_interest`] is cheap and may be called many times per
///   turn; only the net change (diffed at the next [`Backend::wait`])
///   reaches the kernel.
/// * [`Backend::deregister`] is called immediately before the fd is
///   closed; backends need not (and do not) issue a kernel removal of
///   their own.
/// * Data-plane calls ([`Backend::read`], [`Backend::write`],
///   [`Backend::writev`], [`Backend::accept`]) behave exactly like the
///   equivalent nonblocking syscalls: they complete inline and report
///   `WouldBlock` rather than parking the buffer, so both backends are
///   byte-identical by construction.
pub trait Backend: Send {
    /// Which implementation this is (after any construction fallback).
    fn kind(&self) -> BackendKind;

    /// Registers a connected (or connecting) socket under `token`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Registers a listening socket under `token`; readable events mean
    /// "connections are ready for [`Backend::accept`]".
    fn register_acceptor(&mut self, fd: RawFd, token: usize) -> io::Result<()>;

    /// Records the desired interest for `token`; flushed (coalesced) at
    /// the next [`Backend::wait`].
    fn set_interest(&mut self, token: usize, interest: Interest);

    /// Forgets `token`. The engine closes the fd right afterwards, which
    /// is what actually detaches it from the kernel.
    fn deregister(&mut self, token: usize);

    /// Flushes pending interest changes, then blocks until readiness,
    /// `timeout` (None = forever), or a wake. Fills `events`.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;

    /// Accepts one pending connection on a registered acceptor
    /// (nonblocking; the returned stream is nonblocking + cloexec).
    fn accept(&mut self, listener: &TcpListener, token: usize) -> io::Result<TcpStream>;

    /// Reads into `buf` (nonblocking semantics).
    fn read(&mut self, fd: RawFd, token: usize, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes from `buf` (nonblocking semantics).
    fn write(&mut self, fd: RawFd, token: usize, buf: &[u8]) -> io::Result<usize>;

    /// Gathers `bufs` into one write (nonblocking semantics).
    fn writev(&mut self, fd: RawFd, token: usize, bufs: &[&[u8]]) -> io::Result<usize>;

    /// A handle other threads use to interrupt [`Backend::wait`].
    fn wake_handle(&self) -> Waker;

    /// Resets the wake signal (call when the waker token reports
    /// readable).
    fn drain_waker(&self);

    /// Monotonic syscall-economy counters.
    fn counters(&self) -> BackendCounters;
}

/// Per-token desired-vs-kernel interest bookkeeping shared by both
/// backends: the coalescing core, pure (no syscalls) and unit-testable.
///
/// Each registered token holds a cell with the interest the engine
/// *wants* and the interest the kernel *has*. `set` only marks the cell
/// dirty; `flush` walks the dirty list and applies the net diff. A
/// transition that returns to the kernel-registered value before a flush
/// — the read→write→read keep-alive cycle — cancels out entirely and is
/// counted in [`InterestLedger::coalesced`].
#[derive(Debug, Default)]
pub struct InterestLedger {
    cells: Vec<Option<Cell>>,
    dirty: Vec<usize>,
    /// Kernel interest operations issued by `flush` so far.
    pub mods_issued: u64,
    /// Interest transitions absorbed before reaching the kernel.
    pub coalesced: u64,
}

#[derive(Debug)]
struct Cell {
    fd: RawFd,
    desired: Interest,
    /// What the kernel currently has; `None` until the first flush (or
    /// eager registration) applies the ADD.
    registered: Option<Interest>,
    dirty: bool,
}

impl InterestLedger {
    /// Creates an empty ledger.
    pub fn new() -> InterestLedger {
        InterestLedger::default()
    }

    fn ensure(&mut self, token: usize) {
        if token >= self.cells.len() {
            self.cells.resize_with(token + 1, || None);
        }
    }

    /// Tracks `token` with the kernel registration still pending; the
    /// next [`InterestLedger::flush`] applies it.
    pub fn insert(&mut self, token: usize, fd: RawFd, interest: Interest) {
        self.ensure(token);
        self.cells[token] = Some(Cell {
            fd,
            desired: interest,
            registered: None,
            dirty: true,
        });
        self.dirty.push(token);
    }

    /// Tracks `token` with the kernel registration already applied by
    /// the caller (eager ADD); only future changes go through the
    /// ledger.
    pub fn insert_applied(&mut self, token: usize, fd: RawFd, interest: Interest) {
        self.ensure(token);
        self.cells[token] = Some(Cell {
            fd,
            desired: interest,
            registered: Some(interest),
            dirty: false,
        });
    }

    /// Records the interest the engine now wants for `token`. No
    /// syscalls happen here; redundant and self-cancelling transitions
    /// are absorbed (counted in [`InterestLedger::coalesced`]).
    pub fn set(&mut self, token: usize, interest: Interest) {
        let Some(cell) = self.cells.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if cell.desired == interest {
            return;
        }
        cell.desired = interest;
        if cell.dirty {
            // A pending change was re-changed (or reverted) before any
            // kernel op: one syscall saved either way.
            self.coalesced += 1;
            if cell.registered == Some(interest) {
                cell.dirty = false;
            }
        } else if cell.registered != Some(interest) {
            cell.dirty = true;
            self.dirty.push(token);
        }
    }

    /// The interest the engine currently wants for `token`.
    pub fn desired(&self, token: usize) -> Option<Interest> {
        self.cells
            .get(token)
            .and_then(Option::as_ref)
            .map(|c| c.desired)
    }

    /// The fd tracked under `token`.
    pub fn fd(&self, token: usize) -> Option<RawFd> {
        self.cells
            .get(token)
            .and_then(Option::as_ref)
            .map(|c| c.fd)
    }

    /// Iterates `(token, fd, desired)` for every tracked registration.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RawFd, Interest)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(t, c)| c.as_ref().map(|c| (t, c.fd, c.desired)))
    }

    /// Stops tracking `token`, returning its fd. No kernel op: the
    /// caller closes the fd, which detaches it.
    pub fn remove(&mut self, token: usize) -> Option<RawFd> {
        self.cells
            .get_mut(token)
            .and_then(Option::take)
            .map(|c| c.fd)
    }

    /// Applies every pending net change through `apply(fd, token,
    /// desired, is_add)`; each successful call counts as one kernel op
    /// in [`InterestLedger::mods_issued`]. A failed apply leaves the
    /// cell dirty for the next flush.
    pub fn flush(&mut self, mut apply: impl FnMut(RawFd, usize, Interest, bool) -> io::Result<()>) {
        if self.dirty.is_empty() {
            return;
        }
        let mut retry = Vec::new();
        for token in std::mem::take(&mut self.dirty) {
            let Some(cell) = self.cells.get_mut(token).and_then(Option::as_mut) else {
                continue; // removed since it was marked dirty
            };
            if !cell.dirty {
                continue; // the change cancelled out
            }
            let is_add = cell.registered.is_none();
            match apply(cell.fd, token, cell.desired, is_add) {
                Ok(()) => {
                    cell.registered = Some(cell.desired);
                    cell.dirty = false;
                    self.mods_issued += 1;
                }
                Err(_) => retry.push(token),
            }
        }
        self.dirty = retry;
    }
}

/// The epoll implementation: the existing [`Poller`] plus the interest
/// ledger, so interest churn within one event-loop turn never reaches
/// the kernel. Registrations ADD eagerly (so accept-path errors surface
/// where they can be handled); only MODs are lazy.
pub struct EpollBackend {
    poller: Poller,
    ledger: InterestLedger,
    waker: Waker,
    waker_token: usize,
    epoll_events: Events,
    adds_issued: u64,
}

impl EpollBackend {
    /// Creates the epoll instance and its waker, registering the waker
    /// under `waker_token`.
    ///
    /// # Errors
    ///
    /// Propagates epoll/eventfd creation failures.
    pub fn new(waker_token: usize) -> io::Result<EpollBackend> {
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(waker.as_raw_fd(), waker_token, Interest::READABLE)?;
        let mut ledger = InterestLedger::new();
        ledger.insert_applied(waker_token, waker.as_raw_fd(), Interest::READABLE);
        Ok(EpollBackend {
            poller,
            ledger,
            waker,
            waker_token,
            epoll_events: Events::with_capacity(1024),
            adds_issued: 1,
        })
    }
}

impl std::fmt::Debug for EpollBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpollBackend")
            .field("poller", &self.poller)
            .field("adds_issued", &self.adds_issued)
            .finish()
    }
}

impl Backend for EpollBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Epoll
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        debug_assert!(token != self.waker_token, "token collides with waker");
        self.poller.register(fd, token, interest)?;
        self.adds_issued += 1;
        self.ledger.insert_applied(token, fd, interest);
        Ok(())
    }

    fn register_acceptor(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.register(fd, token, Interest::READABLE)
    }

    fn set_interest(&mut self, token: usize, interest: Interest) {
        self.ledger.set(token, interest);
    }

    fn deregister(&mut self, token: usize) {
        // No EPOLL_CTL_DEL: the engine closes the fd right after, which
        // removes the registration for free.
        self.ledger.remove(token);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let poller = &self.poller;
        self.ledger.flush(|fd, token, interest, is_add| {
            if is_add {
                poller.register(fd, token, interest)
            } else {
                poller.modify(fd, token, interest)
            }
        });
        events.clear();
        self.poller.wait(&mut self.epoll_events, timeout)?;
        events.extend(self.epoll_events.iter());
        Ok(())
    }

    fn accept(&mut self, listener: &TcpListener, _token: usize) -> io::Result<TcpStream> {
        accept_nonblocking(listener)
    }

    fn read(&mut self, fd: RawFd, _token: usize, buf: &mut [u8]) -> io::Result<usize> {
        let ret = unsafe { sys::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret as usize)
        }
    }

    fn write(&mut self, fd: RawFd, _token: usize, buf: &[u8]) -> io::Result<usize> {
        let ret = unsafe { sys::write(fd, buf.as_ptr().cast(), buf.len()) };
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret as usize)
        }
    }

    fn writev(&mut self, fd: RawFd, _token: usize, bufs: &[&[u8]]) -> io::Result<usize> {
        super::writev(fd, bufs)
    }

    fn wake_handle(&self) -> Waker {
        self.waker.clone()
    }

    fn drain_waker(&self) {
        self.waker.drain();
    }

    fn counters(&self) -> BackendCounters {
        BackendCounters {
            epoll_ctl_calls: self.adds_issued + self.ledger.mods_issued,
            interest_coalesced: self.ledger.coalesced,
            sqe_submitted: 0,
            cqe_completed: 0,
        }
    }
}

static FALLBACK_LOGGED: Once = Once::new();

/// Constructs the requested backend, falling back from io_uring to epoll
/// (logged once per process) when ring setup fails — `ENOSYS` on old
/// kernels, `EPERM`/`EACCES` under seccomp or `io_uring_disabled`.
///
/// # Errors
///
/// Propagates epoll construction failures (there is nothing left to fall
/// back to).
pub fn create(kind: BackendKind, waker_token: usize) -> io::Result<Box<dyn Backend>> {
    match kind {
        BackendKind::Epoll => Ok(Box::new(EpollBackend::new(waker_token)?)),
        BackendKind::IoUring => match super::uring::UringBackend::new(waker_token) {
            Ok(backend) => Ok(Box::new(backend)),
            Err(err) => {
                FALLBACK_LOGGED.call_once(|| {
                    eprintln!(
                        "mutcon-live: io_uring unavailable ({err}); falling back to epoll"
                    );
                });
                Ok(Box::new(EpollBackend::new(waker_token)?))
            }
        },
    }
}

/// Whether this kernel lets us set up an io_uring ring (probes with a
/// tiny ring, then tears it down). Used by tests to auto-skip io_uring
/// cases with a visible notice instead of silently passing on epoll.
pub fn io_uring_available() -> bool {
    super::uring::probe()
}

/// Reads the soft/hard fd limit without changing it (a zero-cap raise is
/// a no-op probe).
pub fn nofile_soft_limit() -> io::Result<u64> {
    let mut old = sys::RLimit64 { cur: 0, max: 0 };
    cvt(unsafe { sys::prlimit64(0, sys::RLIMIT_NOFILE, std::ptr::null(), &mut old) })?;
    Ok(old.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Satellite: the desired-vs-registered diff must issue zero
    /// redundant kernel ops across read→write→read keep-alive cycles.
    #[test]
    fn ledger_coalesces_keepalive_interest_cycles() {
        let mut ledger = InterestLedger::new();
        ledger.insert_applied(7, 33, Interest::READABLE);

        let applied: RefCell<Vec<(usize, Interest)>> = RefCell::new(Vec::new());
        let flush = |ledger: &mut InterestLedger| {
            ledger.flush(|_fd, token, interest, _add| {
                applied.borrow_mut().push((token, interest));
                Ok(())
            });
        };

        // 100 keep-alive requests: each flips READABLE → WRITABLE (body
        // queued) → READABLE (flushed inside the same turn).
        for _ in 0..100 {
            ledger.set(7, Interest::WRITABLE);
            ledger.set(7, Interest::READABLE);
            flush(&mut ledger);
        }

        assert!(
            applied.borrow().is_empty(),
            "self-cancelling cycles must never reach the kernel"
        );
        assert_eq!(ledger.mods_issued, 0);
        assert_eq!(ledger.coalesced, 100, "one absorbed transition per cycle");

        // A transition that is still pending at flush time goes through
        // exactly once.
        ledger.set(7, Interest::WRITABLE);
        flush(&mut ledger);
        assert_eq!(applied.borrow().as_slice(), &[(7, Interest::WRITABLE)]);
        assert_eq!(ledger.mods_issued, 1);

        // Setting the same value again is a no-op, not a mod.
        ledger.set(7, Interest::WRITABLE);
        flush(&mut ledger);
        assert_eq!(ledger.mods_issued, 1);
    }

    #[test]
    fn ledger_re_dirty_after_flush_counts_once() {
        let mut ledger = InterestLedger::new();
        ledger.insert_applied(0, 10, Interest::READABLE);
        ledger.set(0, Interest::WRITABLE);
        ledger.set(0, Interest::NONE); // re-change before flush: coalesced
        ledger.flush(|_, _, interest, _| {
            assert_eq!(interest, Interest::NONE);
            Ok(())
        });
        assert_eq!(ledger.mods_issued, 1);
        assert_eq!(ledger.coalesced, 1);
        assert_eq!(ledger.desired(0), Some(Interest::NONE));
    }

    #[test]
    fn ledger_lazy_insert_applies_on_flush() {
        let mut ledger = InterestLedger::new();
        ledger.insert(3, 44, Interest::READABLE);
        let mut adds = Vec::new();
        ledger.flush(|fd, token, interest, is_add| {
            adds.push((fd, token, interest, is_add));
            Ok(())
        });
        assert_eq!(adds, vec![(44, 3, Interest::READABLE, true)]);
        // Second flush: nothing pending.
        ledger.flush(|_, _, _, _| panic!("nothing to apply"));
    }

    #[test]
    fn ledger_remove_drops_pending_work() {
        let mut ledger = InterestLedger::new();
        ledger.insert_applied(1, 20, Interest::READABLE);
        ledger.set(1, Interest::WRITABLE);
        assert_eq!(ledger.remove(1), Some(20));
        ledger.flush(|_, _, _, _| panic!("removed token must not flush"));
        ledger.set(1, Interest::READABLE); // unknown token: ignored
        assert_eq!(ledger.desired(1), None);
    }

    #[test]
    fn ledger_failed_apply_retries_next_flush() {
        let mut ledger = InterestLedger::new();
        ledger.insert_applied(2, 30, Interest::READABLE);
        ledger.set(2, Interest::WRITABLE);
        ledger.flush(|_, _, _, _| Err(io::Error::from(io::ErrorKind::Other)));
        assert_eq!(ledger.mods_issued, 0);
        let mut ok = 0;
        ledger.flush(|_, _, _, _| {
            ok += 1;
            Ok(())
        });
        assert_eq!(ok, 1);
        assert_eq!(ledger.mods_issued, 1);
    }

    #[test]
    fn backend_kind_parse_and_env_default() {
        assert_eq!(BackendKind::parse("epoll"), Some(BackendKind::Epoll));
        assert_eq!(BackendKind::parse("io_uring"), Some(BackendKind::IoUring));
        assert_eq!(BackendKind::parse(" IO-URING "), Some(BackendKind::IoUring));
        assert_eq!(BackendKind::parse("uring"), Some(BackendKind::IoUring));
        assert_eq!(BackendKind::parse("kqueue"), None);
        assert_eq!(BackendKind::Epoll.label(), "epoll");
        assert_eq!(BackendKind::IoUring.label(), "io_uring");
    }

    #[test]
    fn epoll_backend_round_trip() {
        use std::os::fd::AsRawFd;

        let mut backend = EpollBackend::new(1).unwrap();
        let listener = super::super::listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        backend
            .register_acceptor(listener.as_raw_fd(), 0)
            .unwrap();

        let client = std::net::TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));

        let accepted = backend.accept(&listener, 0).unwrap();
        let tok = 5;
        backend
            .register(accepted.as_raw_fd(), tok, Interest::READABLE)
            .unwrap();

        // Nothing to read yet: WouldBlock, like the raw syscall.
        let mut chunk = [0u8; 8];
        let err = backend
            .read(accepted.as_raw_fd(), tok, &mut chunk)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        use std::io::Write as _;
        (&client).write_all(b"ping").unwrap();
        backend
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == tok && e.readable));
        let n = backend.read(accepted.as_raw_fd(), tok, &mut chunk).unwrap();
        assert_eq!(&chunk[..n], b"ping");

        let wrote = backend
            .writev(accepted.as_raw_fd(), tok, &[b"po", b"ng"])
            .unwrap();
        assert_eq!(wrote, 4);
        let mut got = [0u8; 4];
        use std::io::Read as _;
        (&client).read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");

        let before = backend.counters();
        // Keep-alive style churn coalesces to nothing.
        backend.set_interest(tok, Interest::WRITABLE);
        backend.set_interest(tok, Interest::READABLE);
        backend
            .wait(&mut events, Some(Duration::ZERO))
            .unwrap();
        let after = backend.counters();
        assert_eq!(after.epoll_ctl_calls, before.epoll_ctl_calls);
        assert_eq!(
            after.interest_coalesced,
            before.interest_coalesced + 1
        );

        backend.deregister(tok);
        drop(accepted);
    }

    #[test]
    fn epoll_backend_waker_round_trip() {
        let mut backend = EpollBackend::new(1).unwrap();
        let waker = backend.wake_handle();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        backend
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        backend.drain_waker();
        handle.join().unwrap();
    }

    #[test]
    fn raise_nofile_limit_reports_current() {
        let (before, after) = super::super::raise_nofile_limit(64).unwrap();
        // The cap is far below any sane soft limit: nothing changes.
        assert_eq!(before, after);
        assert!(nofile_soft_limit().unwrap() >= 64);
    }
}
