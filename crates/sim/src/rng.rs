//! Seeded randomness for reproducible simulations.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`]
//! created from an explicit `u64` seed, so a given (seed, configuration)
//! pair always produces the same trace, the same poll sequence and the
//! same experiment numbers.
//!
//! The uniform source is an in-tree xoshiro256++ generator (seeded via
//! SplitMix64, the reference recommendation), and this module implements
//! the distributions the workload generators need — exponential
//! inter-arrival gaps, Box–Muller normals and Knuth Poisson counts — so
//! no randomness crate is required at all.

/// The xoshiro256++ PRNG (Blackman & Vigna): fast, 256-bit state, more
/// than enough statistical quality for workload synthesis. Implemented
/// in-tree so the workspace builds offline.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state with SplitMix64, as the
    /// xoshiro reference code recommends (avoids the all-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded random number generator with the distributions used by the
/// trace generators.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; handy for giving each
    /// simulated object its own stream without cross-contamination.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into fresh entropy from this generator.
        let seed = self.inner.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// A uniform variate in `[0, 1)` (53-bit resolution).
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform variate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Unbiased bounded sampling via 128-bit widening multiply
        // (Lemire's method).
        let range = hi - lo;
        let mut m = (self.inner.next_u64() as u128) * (range as u128);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                m = (self.inner.next_u64() as u128) * (range as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// An exponential variate with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive and finite, got {mean}"
        );
        // 1 − U ∈ (0, 1] avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// A normal variate via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "normal std_dev must be non-negative and finite, got {std_dev}"
        );
        let z = match self.spare_normal.take() {
            Some(z) => z,
            None => {
                let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
                let u2 = self.uniform();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_normal = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std_dev * z
    }

    /// A Poisson count with the given rate (Knuth's method; intended for
    /// the modest λ of the workload generators).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "poisson lambda must be non-negative and finite, got {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        // For large λ, fall back to a normal approximation to avoid the
        // O(λ) loop and underflow of exp(−λ).
        if lambda > 500.0 {
            let sample = self.normal(lambda, lambda.sqrt());
            return sample.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.uniform_u64(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(42);
        let mut parent2 = SimRng::seed_from_u64(42);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.uniform().to_bits(), c2.uniform().to_bits());
        let mut other = parent1.fork(2);
        assert_ne!(c1.uniform().to_bits(), other.uniform().to_bits());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean = 42.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}, expected ≈ {mean}"
        );
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(17);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(3.5)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - 3.5).abs() < 0.1, "observed {observed}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let mut rng = SimRng::seed_from_u64(19);
        let sample = rng.poisson(10_000.0);
        assert!((9_000..11_000).contains(&sample), "sample {sample}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-5.0));
        assert!(rng.chance(5.0));
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = SimRng::seed_from_u64(29);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn pick_panics_on_empty() {
        let mut rng = SimRng::seed_from_u64(31);
        let empty: [u8; 0] = [];
        let _ = rng.pick(&empty);
    }

    #[test]
    #[should_panic(expected = "exponential mean")]
    fn exponential_rejects_bad_mean() {
        let mut rng = SimRng::seed_from_u64(37);
        let _ = rng.exponential(0.0);
    }
}
