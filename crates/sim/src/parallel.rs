//! A shared worker-pool abstraction for the whole workspace.
//!
//! Two layers:
//!
//! * [`ThreadPool`] — a fixed-size pool of long-lived workers fed through
//!   a channel, for background jobs that genuinely need their own
//!   threads. (The live daemons no longer use it for connection
//!   handling — they moved to the readiness-driven event loop over
//!   [`crate::reactor`].)
//! * [`run_all`] — ordered fan-out for *independent* jobs: run a batch of
//!   closures across cores and collect their outputs **in input order**.
//!   Every experiment in this repo owns its seeded RNG and event queue,
//!   so fanning runs out across threads cannot change any result — the
//!   sweep engines are bit-for-bit identical to a serial run, just
//!   faster.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `MUTCON_THREADS` environment variable (`1`
//! forces the serial path; the determinism tests use exactly that).
//!
//! ```
//! use mutcon_sim::parallel::run_all;
//!
//! let squares = run_all((0u64..8).collect(), |n| n * n);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::Cell;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Set while the current thread is a [`run_all`] worker, so nested
    /// fan-outs (a parallel sweep called from an already-parallel outer
    /// job) run inline instead of multiplying the thread count to
    /// workers². Keeps `MUTCON_THREADS` an actual concurrency bound.
    static INSIDE_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Environment variable pinning the worker count for [`run_all`] and
/// [`default_threads`].
pub const THREADS_ENV: &str = "MUTCON_THREADS";

/// The worker count [`run_all`] uses: `MUTCON_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism,
/// otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job` over every element of `jobs` using the default worker
/// count, returning outputs in input order. See [`run_all_threads`].
pub fn run_all<I, O>(jobs: Vec<I>, job: impl Fn(I) -> O + Sync) -> Vec<O>
where
    I: Send,
    O: Send,
{
    run_all_threads(jobs, default_threads(), job)
}

/// Runs `job` over every element of `jobs` on up to `threads` scoped
/// worker threads and returns the outputs **in input order**.
///
/// Jobs must be independent of each other; they are handed to workers in
/// input order, one at a time, so scheduling cannot starve any job. With
/// `threads == 1` (or a single job) everything runs inline on the caller
/// thread — the forced-serial reference path.
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated to the caller once
/// all workers have stopped).
pub fn run_all_threads<I, O>(
    jobs: Vec<I>,
    threads: usize,
    job: impl Fn(I) -> O + Sync,
) -> Vec<O>
where
    I: Send,
    O: Send,
{
    let n = jobs.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 || INSIDE_WORKER.with(Cell::get) {
        return jobs.into_iter().map(job).collect();
    }

    // Workers pull `(index, input)` pairs from a shared iterator and push
    // `(index, output)` pairs back; sorting by index afterwards restores
    // input order no matter how the OS scheduled the work.
    let feed = Mutex::new(jobs.into_iter().enumerate());
    let mut indexed: Vec<(usize, O)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let feed = &feed;
            let job = &job;
            handles.push(scope.spawn(move || {
                INSIDE_WORKER.with(|w| w.set(true));
                let mut local: Vec<(usize, O)> = Vec::new();
                loop {
                    let next = {
                        // A poisoned feed means a sibling worker panicked;
                        // stop quietly so the caller sees *that* panic.
                        let Ok(mut guard) = feed.lock() else { return local };
                        guard.next()
                    };
                    match next {
                        Some((idx, input)) => local.push((idx, job(input))),
                        None => return local,
                    }
                }
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(mut local) => indexed.append(&mut local),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    indexed.sort_by_key(|(idx, _)| *idx);
    indexed.into_iter().map(|(_, out)| out).collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads.
///
/// Dropping the pool performs a clean shutdown: the job channel closes,
/// workers drain what they already received and exit, and `Drop` joins
/// them.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `size` workers.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("mutcon-worker-{i}"))
                    .spawn(move || loop {
                        // The receiver lock is held only while waiting for
                        // one job, then released so peers can pick up the
                        // next one while this job runs.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        match job {
                            // A panicking job must not take the worker with
                            // it (a connection-handler crash would otherwise
                            // permanently shrink the pool).
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(job),
                                );
                            }
                            // Channel closed: clean shutdown.
                            Err(_) => return,
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; returns `false` if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(s) => s.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit...
        drop(self.sender.take());
        // ...then join them. Worker panics are swallowed: a job crashing
        // must not poison shutdown.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("alive", &self.sender.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_all_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = inputs.iter().map(|n| n * 3).collect();
        for threads in [1, 2, 7, 64] {
            let out = run_all_threads(inputs.clone(), threads, |n| n * 3);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn run_all_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_all_threads(empty, 8, |n| n).is_empty());
        assert_eq!(run_all_threads(vec![5], 8, |n| n + 1), vec![6]);
    }

    #[test]
    fn run_all_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        // A rendezvous barrier: with 4 workers and 4 jobs that all wait
        // for each other, completion proves genuine concurrency.
        let barrier = std::sync::Barrier::new(4);
        run_all_threads(vec![(); 4], 4, |()| {
            barrier.wait();
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(seen.lock().unwrap().len(), 4);
    }

    #[test]
    fn run_all_matches_serial_reference() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial = run_all_threads(inputs.clone(), 1, |n| n.wrapping_mul(0x9E37).rotate_left(7));
        let parallel = run_all_threads(inputs, 8, |n| n.wrapping_mul(0x9E37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "job goes boom")]
    fn run_all_propagates_panics() {
        let _ = run_all_threads(vec![0, 1, 2, 3], 2, |n| {
            if n == 2 {
                panic!("job goes boom");
            }
            n
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        // A run_all inside a run_all worker must not spawn another
        // worker set: the inner call runs on the worker thread itself.
        let outer_results = run_all_threads(vec![0u64, 1, 2, 3], 4, |n| {
            let worker = std::thread::current().id();
            let inner = run_all_threads(vec![n * 10, n * 10 + 1], 4, |m| {
                (std::thread::current().id(), m)
            });
            assert!(
                inner.iter().all(|(id, _)| *id == worker),
                "nested run_all escaped its worker thread"
            );
            inner.into_iter().map(|(_, m)| m).collect::<Vec<_>>()
        });
        assert_eq!(
            outer_results,
            vec![vec![0, 1], vec![10, 11], vec![20, 21], vec![30, 31]]
        );
    }

    #[test]
    fn pool_executes_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers, so all jobs are done
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_jobs_run_concurrently() {
        let pool = ThreadPool::new(2);
        // Two rendezvous jobs can only complete if two workers run them
        // at the same time.
        let (tx, rx) = mpsc::sync_channel::<()>(0);
        let tx2 = tx.clone();
        pool.execute(move || {
            tx.send(()).expect("partner is running");
        });
        pool.execute(move || {
            tx2.send(()).expect("partner is running");
        });
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job goes boom"));
        // The worker must still be alive to run this.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn pool_zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }
}
