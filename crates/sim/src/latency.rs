//! Network latency models for the simulated proxy↔server path.
//!
//! The paper deliberately fixes network latency ("we are primarily
//! interested in efficacy of cache consistency mechanisms rather than
//! network dynamics", §6.1.1). [`LatencyModel::Fixed`] is therefore the
//! default everywhere; the stochastic models support sensitivity
//! experiments beyond the paper.

use mutcon_core::time::Duration;

use crate::rng::SimRng;

/// How long a poll/fetch takes on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LatencyModel {
    /// Every request takes exactly this long (the paper's assumption).
    Fixed(Duration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: Duration,
        /// Maximum latency.
        hi: Duration,
    },
    /// Normal with the given mean and standard deviation, truncated at
    /// zero.
    Normal {
        /// Mean latency.
        mean: Duration,
        /// Standard deviation.
        std_dev: Duration,
    },
}

impl LatencyModel {
    /// A zero-latency model (polls complete instantaneously).
    pub const INSTANT: LatencyModel = LatencyModel::Fixed(Duration::ZERO);

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    Duration::from_millis(rng.uniform_u64(lo.as_millis(), hi.as_millis() + 1))
                }
            }
            LatencyModel::Normal { mean, std_dev } => {
                let sample = rng.normal(mean.as_millis() as f64, std_dev.as_millis() as f64);
                Duration::from_millis(sample.max(0.0).round() as u64)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::INSTANT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(Duration::from_millis(80));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(80));
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SimRng::seed_from_u64(2);
        let lo = Duration::from_millis(10);
        let hi = Duration::from_millis(50);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..1_000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s <= hi);
        }
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let mut rng = SimRng::seed_from_u64(3);
        let d = Duration::from_millis(5);
        let m = LatencyModel::Uniform { lo: d, hi: d };
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn normal_truncates_at_zero() {
        let mut rng = SimRng::seed_from_u64(4);
        let m = LatencyModel::Normal {
            mean: Duration::from_millis(1),
            std_dev: Duration::from_millis(100),
        };
        for _ in 0..1_000 {
            // Implicitly checks no panic from negative samples; Duration
            // is unsigned so reaching here means truncation worked.
            let _ = m.sample(&mut rng);
        }
    }

    #[test]
    fn default_is_instant() {
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(LatencyModel::default().sample(&mut rng), Duration::ZERO);
    }
}
