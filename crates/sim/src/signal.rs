//! Process-signal dispatch for long-running daemons: the classic
//! **self-pipe trick**, hand-rolled against the platform C library like
//! [`crate::reactor`].
//!
//! A signal handler may only touch async-signal-safe state, so the
//! handler installed here does exactly one thing: `write(2)` a byte to
//! a pipe. A dedicated dispatcher thread blocks on the read end and
//! fans each delivery out to every registered listener — ordinary Rust
//! closures running on an ordinary thread, free to take locks, allocate
//! and do I/O. Registration ([`on_sighup`]) returns a guard whose drop
//! unregisters, so a daemon's reload hook dies with the daemon.
//!
//! Only `SIGHUP` is wired up — the conventional "re-read your
//! configuration" signal — and [`raise_sighup`] sends it to the current
//! process, which is how tests drive the path without a shell.

#![allow(unsafe_code)]

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The raw surface: signal installation, the self-pipe, and test
/// delivery. Linux-only, declared against the platform C library.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const SIGHUP: c_int = 1;
    pub const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn signal(signum: c_int, handler: usize) -> usize;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn kill(pid: c_int, sig: c_int) -> c_int;
        pub fn getpid() -> c_int;
    }
}

/// Write end of the self-pipe. The handler reads this atomically —
/// it must not touch the registry, the heap, or any lock.
static PIPE_WR: AtomicI32 = AtomicI32::new(-1);

extern "C" fn handle_signal(_signum: i32) {
    let fd = PIPE_WR.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = 1u8;
        // A full pipe just drops the byte — deliveries coalesce, which
        // is exactly SIGHUP's semantics anyway.
        unsafe { sys::write(fd, (&byte as *const u8).cast(), 1) };
    }
}

type Listener = Box<dyn Fn() + Send>;

struct Registry {
    listeners: Mutex<HashMap<u64, Listener>>,
    next_id: AtomicU64,
}

static REGISTRY: OnceLock<io::Result<Registry>> = OnceLock::new();

fn registry() -> io::Result<&'static Registry> {
    let slot = REGISTRY.get_or_init(|| {
        let mut fds = [-1i32; 2];
        if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_CLOEXEC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        PIPE_WR.store(fds[1], Ordering::SeqCst);
        // BSD semantics on Linux/glibc: the handler stays installed and
        // interrupted syscalls restart, so one install lasts the
        // process lifetime.
        let handler = handle_signal as *const () as usize;
        if unsafe { sys::signal(sys::SIGHUP, handler) } == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        let read_fd = fds[0];
        std::thread::Builder::new()
            .name("mutcon-sighup-dispatch".into())
            .spawn(move || dispatch_loop(read_fd))?;
        Ok(Registry {
            listeners: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        })
    });
    match slot {
        Ok(registry) => Ok(registry),
        Err(e) => Err(io::Error::new(e.kind(), e.to_string())),
    }
}

fn dispatch_loop(read_fd: i32) {
    let mut buf = [0u8; 64];
    loop {
        let n = unsafe { sys::read(read_fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n > 0 {
            if let Some(Ok(registry)) = REGISTRY.get() {
                // Listeners run under the registry lock: registering or
                // unregistering from inside a listener would deadlock,
                // so don't. (The proxy's reload hook only touches its
                // own runtime.)
                let listeners = registry
                    .listeners
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                for listener in listeners.values() {
                    listener();
                }
            }
        } else if n < 0 {
            if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        } else {
            return; // EOF — cannot happen, the write end is never closed
        }
    }
}

/// Unregisters its listener on drop (see [`on_sighup`]).
#[derive(Debug)]
pub struct SighupGuard {
    id: u64,
}

impl Drop for SighupGuard {
    fn drop(&mut self) {
        if let Some(Ok(registry)) = REGISTRY.get() {
            registry
                .listeners
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&self.id);
        }
    }
}

/// Registers `listener` to run (on the dispatcher thread, outside any
/// signal context) every time the process receives `SIGHUP`. The first
/// registration installs the process-wide handler and spawns the
/// dispatcher thread; both last for the process lifetime.
///
/// # Errors
///
/// Propagates pipe/handler-installation failures from the first call.
pub fn on_sighup(listener: impl Fn() + Send + 'static) -> io::Result<SighupGuard> {
    let registry = registry()?;
    let id = registry.next_id.fetch_add(1, Ordering::SeqCst);
    registry
        .listeners
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(id, Box::new(listener));
    Ok(SighupGuard { id })
}

/// Sends `SIGHUP` to the current process — the test-suite stand-in for
/// `kill -HUP $(pidof proxy)`.
///
/// # Errors
///
/// Propagates `kill(2)` failures.
pub fn raise_sighup() -> io::Result<()> {
    if unsafe { sys::kill(sys::getpid(), sys::SIGHUP) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn sighup_reaches_listeners_and_guards_unregister() {
        let (tx, rx) = mpsc::channel::<&'static str>();
        let tx2 = tx.clone();
        let first = on_sighup(move || tx.send("first").unwrap()).unwrap();
        let second = on_sighup(move || tx2.send("second").unwrap()).unwrap();

        raise_sighup().unwrap();
        let mut got = [
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, ["first", "second"]);

        // Dropping a guard unregisters its listener; the other survives.
        drop(first);
        raise_sighup().unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "second");
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "the dropped guard's listener must not fire"
        );
        drop(second);
    }
}
