//! Readiness-driven I/O: a hand-rolled `epoll` wrapper.
//!
//! The live daemons (`mutcon-live`) serve every connection from a single
//! reactor thread instead of a thread per connection. This module is the
//! substrate for that: a zero-dependency, level-triggered [`Poller`] over
//! the raw Linux `epoll` syscalls, an eventfd-backed [`Waker`] so other
//! threads can interrupt a blocked `epoll_wait` (shutdown, new work), and
//! a [`connect_nonblocking`] helper so upstream fetches never block the
//! reactor either.
//!
//! The workspace is intentionally dependency-free, so instead of `libc`
//! or `mio` the handful of symbols needed are declared directly against
//! the C library every Rust binary on Linux already links. All `unsafe`
//! in the workspace lives in this module, behind a safe API.
//!
//! ```
//! use mutcon_sim::reactor::{Events, Interest, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let poller = Poller::new().unwrap();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! poller.register(listener.as_raw_fd(), 7, Interest::READABLE).unwrap();
//!
//! let mut events = Events::with_capacity(64);
//! // Nothing is connecting: a zero timeout returns immediately, empty.
//! let n = poller.wait(&mut events, Some(std::time::Duration::ZERO)).unwrap();
//! assert_eq!(n, 0);
//! ```

#![allow(unsafe_code)]

pub mod backend;
pub mod uring;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

pub use backend::{Backend, BackendCounters, BackendKind, InterestLedger, BACKEND_ENV};

/// The raw syscall surface. Linux-only, declared against the platform C
/// library (always linked by std) instead of the `libc` crate.
mod sys {
    use std::os::raw::{c_int, c_long, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;

    pub const EINTR: i32 = 4;
    pub const EINPROGRESS: i32 = 115;

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_REUSEADDR: c_int = 2;
    pub const SO_REUSEPORT: c_int = 15;

    pub const RLIMIT_NOFILE: c_int = 7;

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_POPULATE: c_int = 0x8000;

    /// x86-64 syscall numbers for the two io_uring entry points; the C
    /// library exposes no wrappers for them, so they go through
    /// `syscall(2)`.
    pub const SYS_IO_URING_SETUP: c_long = 425;
    pub const SYS_IO_URING_ENTER: c_long = 426;

    /// `struct rlimit64` for `prlimit64(2)`.
    #[repr(C)]
    pub struct RLimit64 {
        pub cur: u64,
        pub max: u64,
    }

    /// `struct epoll_event`; packed on x86-64 (the kernel ABI), naturally
    /// aligned everywhere else.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// IPv4 `struct sockaddr_in` (port and address in network byte order).
    #[repr(C)]
    pub struct SockAddrIn {
        pub family: u16,
        pub port: u16,
        pub addr: u32,
        pub zero: [u8; 8],
    }

    /// IPv6 `struct sockaddr_in6`.
    #[repr(C)]
    pub struct SockAddrIn6 {
        pub family: u16,
        pub port: u16,
        pub flowinfo: u32,
        pub addr: [u8; 16],
        pub scope_id: u32,
    }

    /// `struct iovec` for scatter/gather I/O.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *const c_void,
        pub len: usize,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
        pub fn accept4(fd: c_int, addr: *mut c_void, addrlen: *mut u32, flags: c_int) -> c_int;
        pub fn prlimit64(
            pid: c_int,
            resource: c_int,
            new_limit: *const RLimit64,
            old_limit: *mut RLimit64,
        ) -> c_int;
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// Converts a `-1` syscall return into the current `errno` as an
/// [`io::Error`].
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness a registration asks for. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Wait for the fd to become readable (or for peer close).
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Wait for the fd to become writable.
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);
    /// No readiness interest; errors and hang-ups are still reported
    /// (epoll always delivers `EPOLLERR`/`EPOLLHUP`).
    pub const NONE: Interest = Interest(0);

    fn bits(self) -> u32 {
        self.0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd is readable (data, or the peer closed its write side).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd is in an error or hang-up state; the connection is over.
    pub closed: bool,
}

/// Reusable buffer of readiness notifications.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Events {
        assert!(capacity > 0, "events buffer needs capacity");
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the delivered events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) struct before testing bits.
            let bits = raw.events;
            let data = raw.data;
            Event {
                token: data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("capacity", &self.buf.len())
            .field("len", &self.len)
            .finish()
    }
}

/// A level-triggered `epoll` instance.
///
/// Registrations map a raw fd to a caller-chosen `token`; [`Poller::wait`]
/// reports which tokens are ready. The caller keeps ownership of every
/// registered fd and must [`Poller::deregister`] (or close) it before
/// reusing its token.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token as u64,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (e.g. the fd is already registered).
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's interest (and/or token).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Closing the fd removes it implicitly; this
    /// exists for fds that outlive their registration.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Blocks until at least one registered fd is ready, `timeout`
    /// expires (`None` waits forever), or a [`Waker`] fires. Fills
    /// `events` and returns the count. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round up so a 0.4 ms deadline doesn't busy-spin at 0.
            Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
        };
        events.len = 0;
        loop {
            let ret = unsafe {
                sys::epoll_wait(
                    self.epfd.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            match cvt(ret) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.raw_os_error() == Some(sys::EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("epfd", &self.epfd.as_raw_fd())
            .finish()
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// Backed by an `eventfd` registered like any other fd: when woken, the
/// wait reports the waker's token readable and [`Waker::drain`] resets
/// it. Cloning shares the same eventfd.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    /// Creates the eventfd (non-blocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates the `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker {
            fd: Arc::new(unsafe { OwnedFd::from_raw_fd(fd) }),
        })
    }

    /// The fd to register with the poller (readable interest).
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Makes the poller's next (or current) wait report the waker
    /// readable. Safe to call from any thread, any number of times.
    pub fn wake(&self) {
        let one: u64 = 1;
        // An EAGAIN here means the counter is already saturated — the
        // reactor is certainly going to wake; nothing to handle.
        let _ = unsafe {
            sys::write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Resets the waker so it can fire again (call when its token is
    /// reported readable).
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        let _ = unsafe {
            sys::read(
                self.fd.as_raw_fd(),
                (&mut counter as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker")
            .field("fd", &self.fd.as_raw_fd())
            .finish()
    }
}

/// A `SocketAddr` encoded as the C sockaddr the syscalls expect.
enum SockAddrStorage {
    V4(sys::SockAddrIn),
    V6(sys::SockAddrIn6),
}

impl SockAddrStorage {
    fn encode(addr: SocketAddr) -> (i32, SockAddrStorage) {
        match addr {
            SocketAddr::V4(v4) => (
                sys::AF_INET,
                SockAddrStorage::V4(sys::SockAddrIn {
                    family: sys::AF_INET as u16,
                    port: v4.port().to_be(),
                    addr: u32::from_ne_bytes(v4.ip().octets()),
                    zero: [0; 8],
                }),
            ),
            SocketAddr::V6(v6) => (
                sys::AF_INET6,
                SockAddrStorage::V6(sys::SockAddrIn6 {
                    family: sys::AF_INET6 as u16,
                    port: v6.port().to_be(),
                    flowinfo: v6.flowinfo().to_be(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                }),
            ),
        }
    }

    fn as_ptr(&self) -> *const std::os::raw::c_void {
        match self {
            SockAddrStorage::V4(v4) => (v4 as *const sys::SockAddrIn).cast(),
            SockAddrStorage::V6(v6) => (v6 as *const sys::SockAddrIn6).cast(),
        }
    }

    fn len(&self) -> u32 {
        match self {
            SockAddrStorage::V4(_) => std::mem::size_of::<sys::SockAddrIn>() as u32,
            SockAddrStorage::V6(_) => std::mem::size_of::<sys::SockAddrIn6>() as u32,
        }
    }
}

/// Starts a non-blocking TCP connect to `addr` and returns the socket
/// immediately — usually before the handshake finishes.
///
/// Register the stream for [`Interest::WRITABLE`]; once writable, the
/// connect has concluded and `TcpStream::take_error()` tells whether it
/// succeeded (`None`) or failed (`Some(error)`).
///
/// # Errors
///
/// Returns immediately-diagnosable failures (no route, bad fd); an
/// asynchronous refusal surfaces later via `take_error`.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let (domain, storage) = SockAddrStorage::encode(addr);
    let fd = cvt(unsafe {
        sys::socket(
            domain,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    })?;
    // Wrap first so the fd is closed on every early-return path.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let ret = unsafe { sys::connect(fd, storage.as_ptr(), storage.len()) };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(sys::EINPROGRESS) {
            return Err(err);
        }
    }
    Ok(stream)
}

/// Creates a non-blocking TCP listener on `addr` with `SO_REUSEPORT`
/// (and `SO_REUSEADDR`) set before binding.
///
/// Several listeners created this way may bind the *same* address: the
/// kernel then load-balances incoming connections across them, which is
/// how a multi-reactor server shards its accept path without a shared
/// accept lock — each reactor owns one listener on the shared port.
/// Bind the first listener with port 0 (ephemeral), read its local
/// address, and bind the rest to that concrete address.
///
/// # Errors
///
/// Propagates socket/setsockopt/bind/listen failures.
pub fn listen_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let (domain, storage) = SockAddrStorage::encode(addr);
    let fd = cvt(unsafe {
        sys::socket(
            domain,
            sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
            0,
        )
    })?;
    // Wrap first so the fd is closed on every early-return path.
    let listener = unsafe { TcpListener::from_raw_fd(fd) };
    let one: i32 = 1;
    for opt in [sys::SO_REUSEADDR, sys::SO_REUSEPORT] {
        cvt(unsafe {
            sys::setsockopt(
                fd,
                sys::SOL_SOCKET,
                opt,
                (&one as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        })?;
    }
    cvt(unsafe { sys::bind(fd, storage.as_ptr(), storage.len()) })?;
    cvt(unsafe { sys::listen(fd, 1024) })?;
    Ok(listener)
}

/// Raises the process's soft `RLIMIT_NOFILE` toward `cap` via a raw
/// `prlimit64(2)` call on the current process. When `cap` exceeds the
/// hard limit, raising the hard limit too is *attempted* — that
/// succeeds with `CAP_SYS_RESOURCE` (root in a container) and fails
/// `EPERM` otherwise, in which case the soft limit settles at the hard
/// limit.
///
/// Returns `(previous_soft, new_soft)`; the two are equal when the soft
/// limit was already at or above the target. A 10k-connection proxy plus
/// its origin pool needs ~20k fds, far past the usual 1024 default, so
/// the event loop calls this once at startup.
///
/// # Errors
///
/// Propagates `prlimit64` failures (e.g. `EPERM` in a locked-down
/// sandbox); the caller should treat that as "run with what we have".
pub fn raise_nofile_limit(cap: u64) -> io::Result<(u64, u64)> {
    let mut old = sys::RLimit64 { cur: 0, max: 0 };
    cvt(unsafe { sys::prlimit64(0, sys::RLIMIT_NOFILE, std::ptr::null(), &mut old) })?;
    if old.cur >= cap {
        return Ok((old.cur, old.cur));
    }
    if cap > old.max {
        // Privileged path: lift the hard limit with the soft one.
        let new = sys::RLimit64 { cur: cap, max: cap };
        if cvt(unsafe { sys::prlimit64(0, sys::RLIMIT_NOFILE, &new, std::ptr::null_mut()) })
            .is_ok()
        {
            return Ok((old.cur, cap));
        }
    }
    let target = old.max.min(cap);
    if old.cur >= target {
        return Ok((old.cur, old.cur));
    }
    let new = sys::RLimit64 {
        cur: target,
        max: old.max,
    };
    cvt(unsafe { sys::prlimit64(0, sys::RLIMIT_NOFILE, &new, std::ptr::null_mut()) })?;
    Ok((old.cur, target))
}

/// Most slices a single [`writev`] call accepts. Callers with more
/// segments must coalesce; the response path only ever needs two
/// (contiguous head, shared body).
pub const MAX_IOVECS: usize = 8;

/// Gathers up to [`MAX_IOVECS`] slices into one `writev(2)` syscall and
/// returns how many bytes the kernel took (possibly a partial prefix
/// spanning a slice boundary).
///
/// Empty slices are passed through; the kernel skips them. This is the
/// zero-copy half of the response path: the shared body slice goes to
/// the socket straight from the cache entry's allocation.
///
/// # Panics
///
/// Panics if more than [`MAX_IOVECS`] slices are passed.
///
/// # Errors
///
/// Propagates the syscall failure (`WouldBlock` when the socket's send
/// buffer is full).
pub fn writev(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    assert!(bufs.len() <= MAX_IOVECS, "too many iovecs");
    let mut iov = [sys::IoVec {
        base: std::ptr::null(),
        len: 0,
    }; MAX_IOVECS];
    for (slot, buf) in iov.iter_mut().zip(bufs) {
        slot.base = buf.as_ptr().cast();
        slot.len = buf.len();
    }
    let ret = unsafe { sys::writev(fd, iov.as_ptr(), bufs.len() as i32) };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as usize)
    }
}

/// Accepts one pending connection with `accept4(2)`, atomically marking
/// the new socket non-blocking and close-on-exec.
///
/// The plain `TcpListener::accept` path costs an extra `fcntl` per
/// connection to flip `O_NONBLOCK` afterwards; folding the flag into the
/// accept matters when a reactor drains a deep backlog in one batch.
/// The peer address is not requested (another small saving) — use
/// `TcpStream::peer_addr` on the rare path that needs it.
///
/// # Errors
///
/// Propagates the syscall failure (`WouldBlock` when the backlog is
/// empty).
pub fn accept_nonblocking(listener: &TcpListener) -> io::Result<TcpStream> {
    let fd = unsafe {
        sys::accept4(
            listener.as_raw_fd(),
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
        )
    };
    if fd < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(unsafe { TcpStream::from_raw_fd(fd) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn reports_accept_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        assert_eq!(
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap(),
            0,
            "no pending connection yet"
        );

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable);
        assert!(!ev.closed);
    }

    #[test]
    fn distinguishes_read_and_write_interest() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        // A fresh connected socket is writable but not readable.
        poller
            .register(client.as_raw_fd(), 1, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.writable);
        assert!(!ev.readable);

        // Narrow to readable-only: nothing to read yet → no events.
        poller
            .modify(client.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        assert_eq!(
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap(),
            0
        );

        // Data arrives → readable.
        (&server_side).write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().next().unwrap().readable);

        // Peer closes → readable (RDHUP) so the EOF read is triggered.
        drop(server_side);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.readable);
        let mut sink = Vec::new();
        let mut c = client;
        let mut chunk = [0u8; 16];
        loop {
            match c.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => sink.extend_from_slice(&chunk[..n]),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(sink, b"ping");
    }

    #[test]
    fn deregister_silences_events() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(4);
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn waker_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.as_raw_fd(), 0, Interest::READABLE)
            .unwrap();

        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable);
        waker.drain();
        // Drained: no longer readable.
        assert_eq!(
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap(),
            0
        );
        handle.join().unwrap();
    }

    #[test]
    fn nonblocking_connect_completes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(addr).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 5, Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
        assert!(stream.take_error().unwrap().is_none(), "connect succeeded");
        assert_eq!(stream.peer_addr().unwrap(), addr);
    }

    #[test]
    fn nonblocking_connect_refusal_surfaces() {
        // Bind, learn the port, drop: nobody listens there afterwards.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let stream = match connect_nonblocking(addr) {
            // Loopback refusals may be synchronous.
            Err(e) => {
                assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
                return;
            }
            Ok(s) => s,
        };
        let poller = Poller::new().unwrap();
        poller
            .register(stream.as_raw_fd(), 5, Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            stream.take_error().unwrap().is_some(),
            "refused connect must surface via take_error"
        );
    }

    #[test]
    fn zero_capacity_events_rejected() {
        let result = std::panic::catch_unwind(|| Events::with_capacity(0));
        assert!(result.is_err());
    }

    #[test]
    fn reuseport_listeners_share_one_port() {
        // First listener picks the ephemeral port; siblings join it.
        let first = listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = listen_reuseport(addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);

        // Both are nonblocking: accept with nothing pending is WouldBlock,
        // not a hang.
        for listener in [&first, &second] {
            match listener.accept() {
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
                Ok(_) => panic!("nothing connected yet"),
            }
        }

        // A connection lands on exactly one of the two listeners.
        let _client = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut accepted = 0;
        while std::time::Instant::now() < deadline && accepted == 0 {
            for listener in [&first, &second] {
                if listener.accept().is_ok() {
                    accepted += 1;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(accepted, 1, "kernel must route the connect to one shard");
    }

    #[test]
    fn writev_gathers_slices_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sender = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut receiver, _) = listener.accept().unwrap();

        let n = writev(
            sender.as_raw_fd(),
            &[b"head: 1\r\n", b"", b"\r\n", b"shared body"],
        )
        .unwrap();
        assert_eq!(n, b"head: 1\r\n\r\nshared body".len());

        let mut got = vec![0u8; n];
        receiver.read_exact(&mut got).unwrap();
        assert_eq!(got, b"head: 1\r\n\r\nshared body");
    }

    #[test]
    fn writev_reports_partial_progress() {
        // A tiny send buffer forces the kernel to take only a prefix of a
        // large gather, exercising the partial-write accounting callers
        // must handle.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let sender = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        sender.set_nonblocking(true).unwrap();
        let (mut receiver, _) = listener.accept().unwrap();

        let head = vec![b'h'; 64];
        let body = vec![b'b'; 4 * 1024 * 1024];
        let mut sent = 0;
        loop {
            match writev(sender.as_raw_fd(), &[&head[sent.min(64)..], &body]) {
                Ok(n) => {
                    assert!(n > 0);
                    sent += n;
                    if sent >= 64 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(sent > 0, "at least one writev must land");
        assert!(
            sent < 64 + body.len(),
            "a 4 MiB gather cannot fit a socket buffer in one call"
        );
        let mut got = vec![0u8; sent.min(64)];
        receiver.read_exact(&mut got).unwrap();
        assert!(got.iter().all(|&b| b == b'h'));
    }

    #[test]
    fn accept_nonblocking_yields_nonblocking_sockets() {
        let listener = listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();

        // Empty backlog → WouldBlock, not a hang.
        match accept_nonblocking(&listener) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(_) => panic!("nothing connected yet"),
        }

        let mut client = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            match accept_nonblocking(&listener) {
                Ok(s) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "accept timed out");
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("{e}"),
            }
        };

        // The accepted socket must already be non-blocking: a read with no
        // data returns WouldBlock immediately instead of hanging.
        let mut chunk = [0u8; 8];
        match (&accepted).read(&mut chunk) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(n) => panic!("unexpected read of {n} bytes"),
        }

        // And it is a working full-duplex socket.
        (&accepted).write_all(b"hello").unwrap();
        let mut got = [0u8; 5];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");
    }

    #[test]
    fn reuseport_listener_registers_with_poller() {
        let listener = listen_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable);
    }
}
