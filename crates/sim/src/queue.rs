//! The discrete-event queue and virtual clock.
//!
//! [`EventQueue`] is a time-ordered priority queue. Popping an event
//! advances the virtual clock to the event's scheduled time; scheduling in
//! the past is rejected. Events scheduled for the same instant are
//! delivered in scheduling (FIFO) order, which — together with seeded
//! randomness — makes every simulation in this workspace bit-for-bit
//! reproducible.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use mutcon_core::time::{Duration, Timestamp};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

// Order: earliest time first; FIFO among equal times. (Reversed because
// BinaryHeap is a max-heap.)
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

/// A deterministic discrete-event queue with a virtual clock.
///
/// `E` is the caller's event payload type; the queue imposes no trait
/// bounds on it beyond what the caller's own usage requires.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: Timestamp,
    executed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: Timestamp::ZERO,
            executed: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of events delivered so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (cancelled events may still be
    /// counted until their scheduled time passes).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time — an event
    /// in the past can never be delivered and indicates a logic error in
    /// the caller.
    pub fn schedule_at(&mut self, at: Timestamp, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current virtual time.
    pub fn schedule_after(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending. Cancellation is lazy: the entry is dropped when
    /// its time comes up.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Only mark events that are plausibly still queued; popping clears
        // the mark, so double-cancel reports false via the insert result.
        if self.heap.iter().any(|s| s.seq == id.0) {
            self.cancelled.insert(id.0)
        } else {
            false
        }
    }

    /// Time of the next pending event, without popping it.
    pub fn peek_time(&mut self) -> Option<Timestamp> {
        self.skim_cancelled();
        self.heap.peek().map(|s| s.at)
    }

    /// Delivers the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.skim_cancelled();
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went back in time");
        self.now = s.at;
        self.executed += 1;
        Some((s.at, s.event))
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Runs `handler` for every event up to and including time `until`.
    ///
    /// The handler receives the queue itself (to schedule follow-up
    /// events), the event time, and the event. Events scheduled beyond
    /// `until` stay pending. Returns the number of events delivered.
    pub fn run_until(
        &mut self,
        until: Timestamp,
        mut handler: impl FnMut(&mut EventQueue<E>, Timestamp, E),
    ) -> u64 {
        let mut delivered = 0;
        while let Some(at) = self.peek_time() {
            if at > until {
                break;
            }
            let (at, event) = self.pop().expect("peeked event vanished");
            handler(self, at, event);
            delivered += 1;
        }
        // The clock reaches `until` even if no event sat exactly there.
        if self.now < until {
            self.now = until;
        }
        delivered
    }

    /// Runs `handler` until the queue drains completely. Returns the
    /// number of events delivered.
    ///
    /// The caller is responsible for termination: a handler that always
    /// schedules follow-up events loops forever.
    pub fn run_to_completion(
        &mut self,
        mut handler: impl FnMut(&mut EventQueue<E>, Timestamp, E),
    ) -> u64 {
        let mut delivered = 0;
        while let Some((at, event)) = self.pop() {
            handler(self, at, event);
            delivered += 1;
        }
        delivered
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(3), 'c');
        q.schedule_at(secs(1), 'a');
        q.schedule_at(secs(2), 'b');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(secs(1), 'a'), (secs(2), 'b'), (secs(3), 'c')]
        );
        assert_eq!(q.executed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(secs(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Timestamp::ZERO);
        q.schedule_at(secs(7), ());
        q.pop();
        assert_eq!(q.now(), secs(7));
        // schedule_after is relative to the advanced clock.
        q.schedule_after(Duration::from_secs(3), ());
        assert_eq!(q.pop(), Some((secs(10), ())));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(5), ());
        q.pop();
        q.schedule_at(secs(1), ());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1), 'a');
        let b = q.schedule_at(secs(2), 'b');
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((secs(2), 'b')));
        assert!(!q.cancel(b), "cancel after delivery must report false");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(secs(1), 'a');
        q.schedule_at(secs(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(secs(2)));
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut q = EventQueue::new();
        for s in 1..=5 {
            q.schedule_at(secs(s), s);
        }
        let mut seen = Vec::new();
        let n = q.run_until(secs(3), |_, _, e| seen.push(e));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.now(), secs(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        let n = q.run_until(secs(100), |_, _, _| {});
        assert_eq!(n, 0);
        assert_eq!(q.now(), secs(100));
    }

    #[test]
    fn handler_can_schedule_follow_ups() {
        let mut q = EventQueue::new();
        q.schedule_at(secs(1), 1u32);
        let mut seen = Vec::new();
        q.run_to_completion(|q, _, e| {
            seen.push(e);
            if e < 4 {
                q.schedule_after(Duration::from_secs(1), e + 1);
            }
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.now(), secs(4));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
