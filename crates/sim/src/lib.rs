//! # mutcon-sim — deterministic discrete-event simulation
//!
//! The paper's evaluation runs on "an event-based simulator \[of\] a proxy
//! cache that receives requests from several clients" (§6.1.1). This crate
//! is that substrate: a minimal, fully deterministic discrete-event engine
//! with a virtual clock, plus the seeded randomness and network-latency
//! models the workloads need.
//!
//! * [`queue`] — the event queue: schedule/cancel/pop with a virtual
//!   clock and deterministic FIFO tie-breaking for simultaneous events.
//! * [`rng`] — seeded random numbers and the distributions used by the
//!   trace generators (exponential, normal, Poisson).
//! * [`latency`] — network latency models; the paper assumes fixed
//!   latency, richer models support sensitivity experiments.
//! * [`reactor`] — hand-rolled `epoll` readiness primitives driving the
//!   live daemons' single-thread event loops.
//! * [`signal`] — self-pipe `SIGHUP` dispatch, so the live daemons can
//!   re-read configuration on the conventional reload signal.
//!
//! ```
//! use mutcon_sim::queue::EventQueue;
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_after(Duration::from_secs(2), "second");
//! q.schedule_after(Duration::from_secs(1), "first");
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "first")));
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "second")));
//! assert_eq!(q.now(), Timestamp::from_secs(2));
//! ```

// `deny` rather than `forbid`: the raw-syscall `reactor` and `signal`
// modules opt back in with a module-level allow; everything else stays
// safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod latency;
pub mod parallel;
pub mod queue;
pub mod reactor;
pub mod rng;
pub mod signal;

pub use latency::LatencyModel;
pub use parallel::{run_all, run_all_threads, ThreadPool};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
