//! # mutcon-bench — the paper's experiment grid
//!
//! Shared definitions for the `repro` binary and the Criterion benches:
//! which traces, which parameter sweeps, and which configurations
//! correspond to each table and figure of the ICDCS'01 evaluation
//! (§6.2). Keeping the grid in one place guarantees that `repro`, the
//! benches and `EXPERIMENTS.md` all describe the same runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mutcon_core::time::Duration;
use mutcon_core::value::Value;
use mutcon_proxy::experiment::{Fig3Config, Fig7Config};
use mutcon_traces::NamedTrace;

/// The Δ grid of Figure 3 (minutes 1–60).
pub fn fig3_deltas() -> Vec<Duration> {
    [1u64, 2, 5, 10, 15, 20, 30, 45, 60]
        .into_iter()
        .map(Duration::from_mins)
        .collect()
}

/// The trace Figure 3 and Figure 4 report on.
pub const FIG3_TRACE: NamedTrace = NamedTrace::CnnFn;

/// Δ for the Figure 4 and Figure 5 runs (the paper fixes Δ = 10 min).
pub fn fixed_delta() -> Duration {
    Duration::from_mins(10)
}

/// The window of the Figure 4(a) update-frequency plot (2 hours).
pub fn fig4_window() -> Duration {
    Duration::from_hours(2)
}

/// The δ grid of Figure 5 (minutes 1–30).
pub fn fig5_deltas() -> Vec<Duration> {
    [1u64, 2, 5, 10, 15, 20, 25, 30]
        .into_iter()
        .map(Duration::from_mins)
        .collect()
}

/// The trace pair of Figure 5 (CNN/FN with NYTimes/AP).
pub const FIG5_PAIR: (NamedTrace, NamedTrace) = (NamedTrace::CnnFn, NamedTrace::NytAp);

/// The trace pair of Figure 6 (the two NYT feeds — actually related).
pub const FIG6_PAIR: (NamedTrace, NamedTrace) = (NamedTrace::NytAp, NamedTrace::NytReuters);

/// The δ grid of Figure 7 (dollars 0.25–5).
pub fn fig7_deltas() -> Vec<Value> {
    [0.25, 0.5, 0.6, 1.0, 2.0, 3.0, 4.0, 5.0]
        .into_iter()
        .map(Value::new)
        .collect()
}

/// The valued trace pair of Figures 7 and 8 — ordered (Yahoo, AT&T) so
/// the difference function matches the paper's positive-valued plot.
pub const VALUE_PAIR: (NamedTrace, NamedTrace) = (NamedTrace::Yahoo, NamedTrace::Att);

/// δ for the Figure 8 timeline ($0.6, per the paper).
pub fn fig8_delta() -> Value {
    Value::new(0.6)
}

/// The Figure 8 window (2500–5000 s into the traces).
pub fn fig8_window() -> (Duration, Duration) {
    (Duration::from_secs(2_500), Duration::from_secs(5_000))
}

/// The paper's LIMD configuration (§6.2.1).
pub fn paper_fig3_config() -> Fig3Config {
    Fig3Config::default()
}

/// The value-domain adaptive-TTR configuration used for Figures 7–8.
pub fn paper_fig7_config() -> Fig7Config {
    Fig7Config::default()
}

pub mod livebench;
pub mod robustness;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_well_formed() {
        assert!(!fig3_deltas().is_empty());
        assert!(fig3_deltas().windows(2).all(|w| w[0] < w[1]));
        assert!(!fig5_deltas().is_empty());
        assert!(fig7_deltas().windows(2).all(|w| w[0] < w[1]));
        let (from, to) = fig8_window();
        assert!(from < to);
        assert_eq!(fixed_delta(), Duration::from_mins(10));
    }
}
