//! `repro live-bench` — a load generator for the reactor-driven live
//! proxy.
//!
//! Spins up a real origin (fast-ticking object) and a real proxy with a
//! refresher rule, then drives `conns` *simultaneously open* client
//! connections through the proxy's single reactor thread for `rounds`
//! request waves. Every wave writes one `GET` on every socket before
//! reading any response, so all `conns` connections have a request in
//! flight at once — the readiness-driven engine is measured, not the
//! client's politeness.
//!
//! Reported: connection-establishment rate (conns/sec), sustained
//! request throughput (requests/sec), and per-request latency p50/p99.
//! `repro all` embeds the numbers as the `live_bench` section of
//! `BENCH_repro.json`, so proxy scalability is tracked PR-over-PR
//! alongside the simulation engine's wall-clocks.
//!
//! [`wire`] is the same load at **thousands** of connections (the
//! proxy's connection bound is raised to fit), recording the zero-copy
//! send path's counters alongside p99: `writev` vs `write` calls, body
//! copies, accept batching, and buffer-pool traffic over the measured
//! waves. `repro all` embeds it as the `live_wire` section — p99 under
//! concurrent refresh at 2k+ sockets is a first-class tracked number.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_http::message::Request;
use mutcon_http::types::StatusCode;
use mutcon_live::client::HttpClient;
use mutcon_live::origin::LiveOrigin;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_live::wire::read_response;
use mutcon_traces::{UpdateEvent, UpdateTrace};

/// Load shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveBenchConfig {
    /// Concurrently open client connections.
    pub conns: usize,
    /// Request waves issued across all connections.
    pub rounds: usize,
    /// Reactor threads for the proxy under test (`None` = the
    /// `MUTCON_LIVE_REACTORS` / one-per-core default).
    pub reactors: Option<usize>,
    /// `Some(n)`: every `n` waves, `PUT /admin/rules` swaps the hot
    /// object's Δ mid-load — the reconfigure scenario. The recorded
    /// throughput and p99 then *include* the swaps, and every
    /// established connection must survive them.
    pub reload_every: Option<usize>,
}

impl Default for LiveBenchConfig {
    fn default() -> Self {
        // Modest enough for 1-core CI, still two hundred sockets deep.
        LiveBenchConfig {
            conns: 200,
            rounds: 5,
            reactors: None,
            reload_every: None,
        }
    }
}

/// Measured outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveBenchReport {
    /// Reactor threads the proxy actually ran.
    pub reactors: usize,
    /// Connections opened (and held open throughout).
    pub conns: usize,
    /// Request waves.
    pub rounds: usize,
    /// Total requests served (`conns · rounds`).
    pub requests: u64,
    /// Wall-clock to open all connections, milliseconds.
    pub open_ms: f64,
    /// Connection-establishment rate.
    pub conns_per_sec: f64,
    /// Wall-clock of the request waves, milliseconds.
    pub serve_ms: f64,
    /// Sustained request throughput.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses served from the proxy cache.
    pub hit_rate: f64,
    /// Rule reloads applied mid-load (0 when `reload_every` is off).
    pub reloads: u64,
}

/// An object updated every 25 ms — fast enough that the refresher keeps
/// writing (shard write locks!) all through the measurement.
fn bench_trace() -> UpdateTrace {
    let total_ms = 600_000u64;
    let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(1.0))];
    let mut t = 25u64;
    while t <= total_ms {
        events.push(UpdateEvent::valued(
            Timestamp::from_millis(t),
            Value::new(1.0 + t as f64),
        ));
        t += 25;
    }
    UpdateTrace::new("bench", Timestamp::ZERO, Timestamp::from_millis(total_ms), events)
        .expect("monotone events")
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the load.
///
/// # Errors
///
/// Propagates socket failures (including hitting the file-descriptor
/// limit when `conns` is oversized for the environment).
pub fn run(config: LiveBenchConfig) -> io::Result<LiveBenchReport> {
    run_inner(config).map(|(report, _)| report)
}

/// Engine wire-path counter deltas over a bench's serve phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct WireCounters {
    write_calls: u64,
    writev_calls: u64,
    accept_batches: u64,
    body_copies: u64,
    buf_reuses: u64,
    buf_allocs: u64,
    buf_pool_high_water: u64,
}

fn wire_counters(proxy: &LiveProxy) -> WireCounters {
    let m = proxy.engine_metrics();
    WireCounters {
        write_calls: m.write_calls(),
        writev_calls: m.writev_calls(),
        accept_batches: m.accept_batches(),
        body_copies: m.body_copies(),
        buf_reuses: m.buf_reuses(),
        buf_allocs: m.buf_allocs(),
        buf_pool_high_water: m.buf_pool_high_water() as u64,
    }
}

fn run_inner(config: LiveBenchConfig) -> io::Result<(LiveBenchReport, WireCounters)> {
    let conns = config.conns.max(1);
    let rounds = config.rounds.max(1);

    let origin = LiveOrigin::builder().object("/obj", bench_trace()).start()?;
    let proxy = LiveProxy::start(ProxyConfig {
        origin_addr: origin.local_addr(),
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(50))],
        group: None,
        cache_objects: None,
        reactors: config.reactors,
        // Room for every bench socket plus the warm/admin side clients,
        // whatever the MUTCON_LIVE_CONNS default would have allowed.
        max_conns: Some(mutcon_live::server::max_conns().max(conns + 8)),
    })?;
    let addr = proxy.local_addr();

    // Warm the cache so the measured path is hit-dominated.
    let warm = HttpClient::new();
    let warm_resp = warm.get(addr, "/obj", None)?;
    if warm_resp.status() != StatusCode::OK {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("warm-up returned {}", warm_resp.status()),
        ));
    }

    // Phase 1: establish every connection, all held open.
    let open_started = Instant::now();
    let mut socks = Vec::with_capacity(conns);
    for _ in 0..conns {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(StdDuration::from_secs(30)))?;
        sock.set_nodelay(true)?;
        socks.push(sock);
    }
    let open = open_started.elapsed();

    // Phase 2: `rounds` waves of one request per connection; all writes
    // land before any read, so every connection is in flight at once.
    // With `reload_every` set, `PUT /admin/rules` swaps the refresh
    // rule's Δ at the moment every connection has an unanswered request
    // outstanding — the swap must not drop a single one of them.
    let wire = Request::get("/obj").build().to_bytes();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * rounds);
    let mut hits = 0u64;
    let mut reloads = 0u64;
    let before = wire_counters(&proxy);
    let serve_started = Instant::now();
    for round in 0..rounds {
        let mut sent_at = Vec::with_capacity(conns);
        for sock in &mut socks {
            sent_at.push(Instant::now());
            sock.write_all(&wire)?;
        }
        // The swap lands while every connection has a request in
        // flight: all writes are out, no response has been read yet.
        if config.reload_every.is_some_and(|n| round > 0 && round % n == 0) {
            // Toggle Δ 50 ms ↔ 20 ms so every reload is a real change.
            let delta_ms = if reloads % 2 == 0 { 20 } else { 50 };
            let body = format!(r#"{{"rules": [{{"path": "/obj", "delta_ms": {delta_ms}}}]}}"#);
            let resp = warm.put(addr, "/admin/rules", body.into_bytes())?;
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rules reload returned {}", resp.status()),
                ));
            }
            reloads += 1;
        }
        for (sock, sent) in socks.iter_mut().zip(&sent_at) {
            let mut buf = BytesMut::new();
            let resp = read_response(sock, &mut buf)?;
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("proxy returned {}", resp.status()),
                ));
            }
            if resp.headers().get("x-cache") == Some("hit") {
                hits += 1;
            }
        }
    }
    let serve = serve_started.elapsed();
    let after = wire_counters(&proxy);
    let counters = WireCounters {
        write_calls: after.write_calls - before.write_calls,
        writev_calls: after.writev_calls - before.writev_calls,
        accept_batches: after.accept_batches - before.accept_batches,
        body_copies: after.body_copies - before.body_copies,
        buf_reuses: after.buf_reuses - before.buf_reuses,
        buf_allocs: after.buf_allocs - before.buf_allocs,
        // High water is a lifetime mark, not a rate; report it as-is.
        buf_pool_high_water: after.buf_pool_high_water,
    };

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if reloads > 0 {
        // Every swap must have landed: the proxy's epoch is the initial
        // one plus one per reload.
        let resp = warm.get(addr, "/admin/rules", None)?;
        let doc = mutcon_traces::json::parse(
            std::str::from_utf8(resp.body()).unwrap_or_default(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("admin rules: {e}")))?;
        let epoch = doc.get("epoch").and_then(mutcon_traces::json::Json::as_u64);
        if epoch != Some(1 + reloads) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected epoch {}, admin reports {epoch:?}", 1 + reloads),
            ));
        }
    }
    let requests = (conns * rounds) as u64;
    Ok((
        LiveBenchReport {
            reactors: proxy.reactor_count(),
            conns,
            rounds,
            requests,
            open_ms: open.as_secs_f64() * 1e3,
            conns_per_sec: conns as f64 / open.as_secs_f64().max(1e-9),
            serve_ms: serve.as_secs_f64() * 1e3,
            requests_per_sec: requests as f64 / serve.as_secs_f64().max(1e-9),
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
            hit_rate: hits as f64 / requests as f64,
            reloads,
        },
        counters,
    ))
}

/// Measured outcome of a [`wire`] run: the load numbers plus the
/// zero-copy send path's counter deltas over the measured waves.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveWireReport {
    /// The underlying load numbers.
    pub bench: LiveBenchReport,
    /// `writev(2)` calls during the waves (the gathered hit path).
    pub writev_calls: u64,
    /// Plain `write(2)` calls during the waves.
    pub write_calls: u64,
    /// Listener wakeups; `conns / accept_batches` ≈ accepts coalesced
    /// per wakeup during the open phase (the waves add none).
    pub accept_batches: u64,
    /// Bodies memcpy'd into a write buffer during the waves. Hits
    /// contribute zero; a hit-dominated run stays near zero.
    pub body_copies: u64,
    /// Connection buffers recycled from the reactor pools.
    pub buf_reuses: u64,
    /// Connection buffers freshly allocated.
    pub buf_allocs: u64,
    /// Most buffers any reactor pool held at once (lifetime mark).
    pub buf_pool_high_water: u64,
}

/// [`run`] at wire scale: `conns` (≥ 2000 enforced here) sockets held
/// open through the request waves while the refresher keeps writing,
/// with the engine's wire-path counters recorded across the measured
/// interval. This is the tentpole scalability number: p99 under
/// concurrent refresh at thousands of connections.
///
/// # Errors
///
/// Propagates socket failures (a too-low `ulimit -n` being the usual
/// culprit at this scale).
pub fn wire(conns: usize, rounds: usize, reactors: Option<usize>) -> io::Result<LiveWireReport> {
    let (bench, counters) = run_inner(LiveBenchConfig {
        conns: conns.max(2000),
        rounds: rounds.max(1),
        reactors,
        reload_every: None,
    })?;
    Ok(LiveWireReport {
        bench,
        writev_calls: counters.writev_calls,
        write_calls: counters.write_calls,
        accept_batches: counters.accept_batches,
        body_copies: counters.body_copies,
        buf_reuses: counters.buf_reuses,
        buf_allocs: counters.buf_allocs,
        buf_pool_high_water: counters.buf_pool_high_water,
    })
}

/// Renders a wire report as aligned text.
pub fn render_wire(report: &LiveWireReport) -> String {
    format!(
        "{}{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n",
        render(&report.bench),
        "writev calls",
        report.writev_calls,
        "write calls",
        report.write_calls,
        "body copies",
        report.body_copies,
        "buf reuses/allocs",
        format!("{}/{}", report.buf_reuses, report.buf_allocs),
        "pool high water",
        report.buf_pool_high_water,
    )
}

/// The wire report as a JSON object fragment for `BENCH_repro.json`'s
/// `live_wire` section.
pub fn json_wire_fragment(report: &LiveWireReport) -> String {
    format!(
        "{{\"conns\": {}, \"rounds\": {}, \"requests\": {}, \"reactors\": {}, \
         \"requests_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"hit_rate\": {:.3}, \"writev_calls\": {}, \"write_calls\": {}, \
         \"accept_batches\": {}, \"body_copies\": {}, \"buf_reuses\": {}, \
         \"buf_allocs\": {}, \"buf_pool_high_water\": {}}}",
        report.bench.conns,
        report.bench.rounds,
        report.bench.requests,
        report.bench.reactors,
        report.bench.requests_per_sec,
        report.bench.p50_ms,
        report.bench.p99_ms,
        report.bench.hit_rate,
        report.writev_calls,
        report.write_calls,
        report.accept_batches,
        report.body_copies,
        report.buf_reuses,
        report.buf_allocs,
        report.buf_pool_high_water,
    )
}

/// Runs the load once per reactor count: powers of two up to (and
/// always including) `max_reactors`. The recorded sweep is how reactor
/// scaling is tracked PR-over-PR — on a single-core CI box the numbers
/// stay flat; on real hardware they should not.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn sweep(base: LiveBenchConfig, max_reactors: usize) -> io::Result<Vec<LiveBenchReport>> {
    let max = max_reactors.max(1);
    let mut counts = Vec::new();
    let mut n = 1;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    counts.push(max);
    counts
        .into_iter()
        .map(|reactors| {
            run(LiveBenchConfig {
                reactors: Some(reactors),
                ..base
            })
        })
        .collect()
}

/// Renders the report as aligned text.
pub fn render(report: &LiveBenchReport) -> String {
    let reloading = if report.reloads > 0 {
        format!(", {} mid-load rule reloads", report.reloads)
    } else {
        String::new()
    };
    format!(
        "Live proxy load — {} reactor(s), {} connections held open, {} request waves{}\n\
         {:<22} {:>12.0}\n{:<22} {:>12.0}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n",
        report.reactors,
        report.conns,
        report.rounds,
        reloading,
        "conns/sec (open)",
        report.conns_per_sec,
        "requests/sec",
        report.requests_per_sec,
        "latency p50 (ms)",
        report.p50_ms,
        "latency p99 (ms)",
        report.p99_ms,
        "cache hit rate",
        report.hit_rate,
    )
}

/// A reactor-count sweep as a JSON array fragment for
/// `BENCH_repro.json` (one object per reactor count).
pub fn json_sweep_fragment(reports: &[LiveBenchReport]) -> String {
    let rows: Vec<String> = reports.iter().map(json_fragment).collect();
    format!("[{}]", rows.join(", "))
}

/// The report as a JSON object fragment for `BENCH_repro.json`.
pub fn json_fragment(report: &LiveBenchReport) -> String {
    format!(
        "{{\"reactors\": {}, \"conns\": {}, \"rounds\": {}, \"requests\": {}, \"open_ms\": {:.3}, \
         \"conns_per_sec\": {:.1}, \"serve_ms\": {:.3}, \"requests_per_sec\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"hit_rate\": {:.3}, \"reloads\": {}}}",
        report.reactors,
        report.conns,
        report.rounds,
        report.requests,
        report.open_ms,
        report.conns_per_sec,
        report.serve_ms,
        report.requests_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.hit_rate,
        report.reloads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_numbers() {
        let report = run(LiveBenchConfig {
            conns: 24,
            rounds: 2,
            reactors: Some(2),
            reload_every: None,
        })
        .expect("bench run");
        assert_eq!(report.conns, 24);
        assert_eq!(report.requests, 48);
        assert_eq!(report.reactors, 2);
        assert_eq!(report.reloads, 0);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.conns_per_sec > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.hit_rate > 0.5, "hit rate {}", report.hit_rate);
        let text = render(&report);
        assert!(text.contains("requests/sec"));
        let json = json_fragment(&report);
        assert!(json.contains("\"requests\": 48"));
        assert!(json.contains("\"reactors\": 2"));
        assert!(json.contains("\"reloads\": 0"));
    }

    #[test]
    fn wire_counters_prove_zero_copy_serving() {
        // A bench-shaped run small enough for a test: the serve-phase
        // counter deltas must show the zero-copy story — every response
        // leaves via a gather write, no body bytes are ever copied.
        let (bench, counters) = run_inner(LiveBenchConfig {
            conns: 24,
            rounds: 2,
            reactors: Some(1),
            reload_every: None,
        })
        .expect("wire run");
        assert_eq!(bench.requests, 48);
        assert_eq!(counters.body_copies, 0, "hit path must not copy bodies");
        assert!(
            counters.writev_calls >= bench.requests,
            "every hit should gather-write: {} writev for {} requests",
            counters.writev_calls,
            bench.requests
        );
        let report = LiveWireReport {
            bench,
            writev_calls: counters.writev_calls,
            write_calls: counters.write_calls,
            accept_batches: counters.accept_batches,
            body_copies: counters.body_copies,
            buf_reuses: counters.buf_reuses,
            buf_allocs: counters.buf_allocs,
            buf_pool_high_water: counters.buf_pool_high_water,
        };
        let text = render_wire(&report);
        assert!(text.contains("writev calls"));
        assert!(text.contains("pool high water"));
        let json = json_wire_fragment(&report);
        assert!(json.contains("\"requests\": 48"));
        assert!(json.contains("\"body_copies\": 0"));
        assert!(json.contains("\"buf_pool_high_water\": "));
    }

    #[test]
    fn reload_run_swaps_rules_mid_load() {
        let report = run(LiveBenchConfig {
            conns: 16,
            rounds: 6,
            reactors: Some(2),
            reload_every: Some(2),
        })
        .expect("reload bench run");
        // Waves 2 and 4 reload (wave 0 never does); every request is
        // still served across the swaps.
        assert_eq!(report.reloads, 2);
        assert_eq!(report.requests, 96);
        assert!(report.hit_rate > 0.5, "hit rate {}", report.hit_rate);
        assert!(render(&report).contains("2 mid-load rule reloads"));
        assert!(json_fragment(&report).contains("\"reloads\": 2"));
    }

    #[test]
    fn sweep_covers_powers_of_two_up_to_max() {
        let reports = sweep(
            LiveBenchConfig {
                conns: 8,
                rounds: 1,
                reactors: None,
                reload_every: None,
            },
            4,
        )
        .expect("sweep run");
        let counts: Vec<usize> = reports.iter().map(|r| r.reactors).collect();
        assert_eq!(counts, vec![1, 2, 4]);
        let json = json_sweep_fragment(&reports);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"reactors\": 4"));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.99), 4.0);
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
    }
}
