//! `repro live-bench` — a load generator for the reactor-driven live
//! proxy.
//!
//! Spins up a real origin (fast-ticking object) and a real proxy with a
//! refresher rule, then drives `conns` *simultaneously open* client
//! connections through the proxy's single reactor thread for `rounds`
//! request waves. Every wave writes one `GET` on every socket before
//! reading any response, so all `conns` connections have a request in
//! flight at once — the readiness-driven engine is measured, not the
//! client's politeness.
//!
//! Reported: connection-establishment rate (conns/sec), sustained
//! request throughput (requests/sec), and per-request latency p50/p99.
//! `repro all` embeds the numbers as the `live_bench` section of
//! `BENCH_repro.json`, so proxy scalability is tracked PR-over-PR
//! alongside the simulation engine's wall-clocks.
//!
//! [`wire`] is the same load at **thousands** of connections (the
//! proxy's connection bound is raised to fit), recording the zero-copy
//! send path's counters alongside p99: `writev` vs `write` calls, body
//! copies, accept batching, and buffer-pool traffic over the measured
//! waves. `repro all` embeds it as the `live_wire` section — p99 under
//! concurrent refresh at thousands of sockets is a first-class tracked
//! number, alongside the interest-coalescing `epoll_ctl`-per-request
//! ratio.
//!
//! [`backend_head_to_head`] runs the same wire load once per reactor
//! backend (coalesced-interest epoll, then raw io_uring when the
//! kernel grants rings) for the `live_backend` section — the two legs
//! share conns/rounds/reactors so their numbers compare directly.
//!
//! [`overload`] is the admission-control wave bench: stage after stage
//! of doubling flash crowds thrown at cold keys with the LIMD admission
//! limiter pinned, recorded as the `live_overload` section — the proof
//! that p99 and the non-429 error rate *plateau* once offered load
//! ramps past saturation, instead of collapsing with queue depth.
//!
//! [`zipf`] is the cache-pressure bench for the per-reactor L1: a
//! seeded Zipf(s = 1.0) catalog big enough to overflow the L2 replayed
//! over the *identical* request sequence with the L1 enabled and
//! disabled, recorded as the `live_zipf` section. The verdicts are the
//! coherence story: the engine's post-serve stale audit and a
//! client-side `x-last-modified-ms` monotonicity check must both count
//! exactly zero while the refresher churns the hottest ranks.
//!
//! [`refresh`] is the refresh-plane drift bench: a 50 000-path rule
//! catalog, all due at once, drained through a scripted-latency origin
//! twice over identical per-path latencies — one poll worker, then a
//! pool — recorded as the `live_refresh` section. The headline number
//! is p99 *fidelity lag* (scheduled-due vs actual-send drift from the
//! refresh plane's own histogram); the verdict fails unless the
//! concurrent leg cuts it at least 5× at equal poll counts with zero
//! stale serves observed by a reader hammering the hot paths.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_http::message::{Request, Response};
use mutcon_http::types::StatusCode;
use mutcon_live::client::{HttpClient, X_LAST_MODIFIED_MS};
use mutcon_live::origin::LiveOrigin;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_live::wire::{read_request, read_response, write_response};
use mutcon_sim::reactor::BackendKind;
use mutcon_traces::{UpdateEvent, UpdateTrace};

/// Load shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveBenchConfig {
    /// Concurrently open client connections.
    pub conns: usize,
    /// Request waves issued across all connections.
    pub rounds: usize,
    /// Reactor threads for the proxy under test (`None` = the
    /// `MUTCON_LIVE_REACTORS` / one-per-core default).
    pub reactors: Option<usize>,
    /// `Some(n)`: every `n` waves, `PUT /admin/rules` swaps the hot
    /// object's Δ mid-load — the reconfigure scenario. The recorded
    /// throughput and p99 then *include* the swaps, and every
    /// established connection must survive them.
    pub reload_every: Option<usize>,
    /// Reactor I/O backend for the proxy under test (`None` = the
    /// `MUTCON_LIVE_BACKEND` / epoll default).
    pub backend: Option<BackendKind>,
    /// Per-reactor L1 hot-object cache capacity (`None` = the
    /// `MUTCON_LIVE_L1` / 128-object default; `Some(0)` disables).
    pub l1_objects: Option<usize>,
}

impl Default for LiveBenchConfig {
    fn default() -> Self {
        // Modest enough for 1-core CI, still two hundred sockets deep.
        LiveBenchConfig {
            conns: 200,
            rounds: 5,
            reactors: None,
            reload_every: None,
            backend: None,
            l1_objects: None,
        }
    }
}

/// Measured outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveBenchReport {
    /// Reactor threads the proxy actually ran.
    pub reactors: usize,
    /// Connections opened (and held open throughout).
    pub conns: usize,
    /// Request waves.
    pub rounds: usize,
    /// Total requests served (`conns · rounds`).
    pub requests: u64,
    /// Wall-clock to open all connections, milliseconds.
    pub open_ms: f64,
    /// Connection-establishment rate.
    pub conns_per_sec: f64,
    /// Wall-clock of the request waves, milliseconds.
    pub serve_ms: f64,
    /// Sustained request throughput.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses served from the proxy cache.
    pub hit_rate: f64,
    /// Rule reloads applied mid-load (0 when `reload_every` is off).
    pub reloads: u64,
}

/// An object updated every 25 ms — fast enough that the refresher keeps
/// writing (shard write locks!) all through the measurement.
fn bench_trace() -> UpdateTrace {
    let total_ms = 600_000u64;
    let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(1.0))];
    let mut t = 25u64;
    while t <= total_ms {
        events.push(UpdateEvent::valued(
            Timestamp::from_millis(t),
            Value::new(1.0 + t as f64),
        ));
        t += 25;
    }
    UpdateTrace::new("bench", Timestamp::ZERO, Timestamp::from_millis(total_ms), events)
        .expect("monotone events")
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the load.
///
/// # Errors
///
/// Propagates socket failures (including hitting the file-descriptor
/// limit when `conns` is oversized for the environment).
pub fn run(config: LiveBenchConfig) -> io::Result<LiveBenchReport> {
    run_inner(config).map(|(report, _, _)| report)
}

/// Engine wire-path counter deltas over a bench's serve phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct WireCounters {
    write_calls: u64,
    writev_calls: u64,
    accept_batches: u64,
    body_copies: u64,
    buf_reuses: u64,
    buf_allocs: u64,
    buf_pool_high_water: u64,
    epoll_ctl_calls: u64,
    interest_coalesced: u64,
    sqe_submitted: u64,
    cqe_completed: u64,
}

fn wire_counters(proxy: &LiveProxy) -> WireCounters {
    let m = proxy.engine_metrics();
    WireCounters {
        write_calls: m.write_calls(),
        writev_calls: m.writev_calls(),
        accept_batches: m.accept_batches(),
        body_copies: m.body_copies(),
        buf_reuses: m.buf_reuses(),
        buf_allocs: m.buf_allocs(),
        buf_pool_high_water: m.buf_pool_high_water() as u64,
        epoll_ctl_calls: m.epoll_ctl_calls(),
        interest_coalesced: m.interest_coalesced(),
        sqe_submitted: m.sqe_submitted(),
        cqe_completed: m.cqe_completed(),
    }
}

fn run_inner(
    config: LiveBenchConfig,
) -> io::Result<(LiveBenchReport, WireCounters, Vec<String>)> {
    let conns = config.conns.max(1);
    let rounds = config.rounds.max(1);

    let origin = LiveOrigin::builder().object("/obj", bench_trace()).start()?;
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(50))],
        reactors: config.reactors,
        // Room for every bench socket plus the warm/admin side clients,
        // whatever the MUTCON_LIVE_CONNS default would have allowed.
        max_conns: Some(mutcon_live::server::max_conns().max(conns + 8)),
        backend: config.backend,
        l1_objects: config.l1_objects,
        ..ProxyConfig::new(origin.local_addr())
    })?;
    // What each reactor actually runs (io_uring may have fallen back).
    let active_backends: Vec<String> = proxy
        .engine_metrics()
        .reactor_backends()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let addr = proxy.local_addr();

    // Warm the cache so the measured path is hit-dominated.
    let warm = HttpClient::new();
    let warm_resp = warm.get(addr, "/obj", None)?;
    if warm_resp.status() != StatusCode::OK {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("warm-up returned {}", warm_resp.status()),
        ));
    }

    // Phase 1: establish every connection, all held open.
    let open_started = Instant::now();
    let mut socks = Vec::with_capacity(conns);
    for _ in 0..conns {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(StdDuration::from_secs(30)))?;
        sock.set_nodelay(true)?;
        socks.push(sock);
    }
    let open = open_started.elapsed();

    // Phase 2: `rounds` waves of one request per connection; all writes
    // land before any read, so every connection is in flight at once.
    // With `reload_every` set, `PUT /admin/rules` swaps the refresh
    // rule's Δ at the moment every connection has an unanswered request
    // outstanding — the swap must not drop a single one of them.
    let wire = Request::get("/obj").build().to_bytes();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * rounds);
    let mut hits = 0u64;
    let mut reloads = 0u64;
    let before = wire_counters(&proxy);
    let serve_started = Instant::now();
    for round in 0..rounds {
        let mut sent_at = Vec::with_capacity(conns);
        for sock in &mut socks {
            sent_at.push(Instant::now());
            sock.write_all(&wire)?;
        }
        // The swap lands while every connection has a request in
        // flight: all writes are out, no response has been read yet.
        if config.reload_every.is_some_and(|n| round > 0 && round % n == 0) {
            // Toggle Δ 50 ms ↔ 20 ms so every reload is a real change.
            let delta_ms = if reloads % 2 == 0 { 20 } else { 50 };
            let body = format!(r#"{{"rules": [{{"path": "/obj", "delta_ms": {delta_ms}}}]}}"#);
            let resp = warm.put(addr, "/admin/rules", body.into_bytes())?;
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rules reload returned {}", resp.status()),
                ));
            }
            reloads += 1;
        }
        for (sock, sent) in socks.iter_mut().zip(&sent_at) {
            let mut buf = BytesMut::new();
            let resp = read_response(sock, &mut buf)?;
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("proxy returned {}", resp.status()),
                ));
            }
            if resp.headers().get("x-cache") == Some("hit") {
                hits += 1;
            }
        }
    }
    let serve = serve_started.elapsed();
    let after = wire_counters(&proxy);
    let counters = WireCounters {
        write_calls: after.write_calls - before.write_calls,
        writev_calls: after.writev_calls - before.writev_calls,
        accept_batches: after.accept_batches - before.accept_batches,
        body_copies: after.body_copies - before.body_copies,
        buf_reuses: after.buf_reuses - before.buf_reuses,
        buf_allocs: after.buf_allocs - before.buf_allocs,
        // High water is a lifetime mark, not a rate; report it as-is.
        buf_pool_high_water: after.buf_pool_high_water,
        epoll_ctl_calls: after.epoll_ctl_calls - before.epoll_ctl_calls,
        interest_coalesced: after.interest_coalesced - before.interest_coalesced,
        sqe_submitted: after.sqe_submitted - before.sqe_submitted,
        cqe_completed: after.cqe_completed - before.cqe_completed,
    };

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if reloads > 0 {
        // Every swap must have landed: the proxy's epoch is the initial
        // one plus one per reload.
        let resp = warm.get(addr, "/admin/rules", None)?;
        let doc = mutcon_traces::json::parse(
            std::str::from_utf8(resp.body()).unwrap_or_default(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("admin rules: {e}")))?;
        let epoch = doc.get("epoch").and_then(mutcon_traces::json::Json::as_u64);
        if epoch != Some(1 + reloads) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected epoch {}, admin reports {epoch:?}", 1 + reloads),
            ));
        }
    }
    let requests = (conns * rounds) as u64;
    let report = LiveBenchReport {
        reactors: proxy.reactor_count(),
        conns,
        rounds,
        requests,
        open_ms: open.as_secs_f64() * 1e3,
        conns_per_sec: conns as f64 / open.as_secs_f64().max(1e-9),
        serve_ms: serve.as_secs_f64() * 1e3,
        requests_per_sec: requests as f64 / serve.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        hit_rate: hits as f64 / requests as f64,
        reloads,
    };
    Ok((report, counters, active_backends))
}

/// Measured outcome of a [`wire`] run: the load numbers plus the
/// zero-copy send path's counter deltas over the measured waves.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveWireReport {
    /// The underlying load numbers.
    pub bench: LiveBenchReport,
    /// `writev(2)` calls during the waves (the gathered hit path).
    pub writev_calls: u64,
    /// Plain `write(2)` calls during the waves.
    pub write_calls: u64,
    /// Listener wakeups; `conns / accept_batches` ≈ accepts coalesced
    /// per wakeup during the open phase (the waves add none).
    pub accept_batches: u64,
    /// Bodies memcpy'd into a write buffer during the waves. Hits
    /// contribute zero; a hit-dominated run stays near zero.
    pub body_copies: u64,
    /// Connection buffers recycled from the reactor pools.
    pub buf_reuses: u64,
    /// Connection buffers freshly allocated.
    pub buf_allocs: u64,
    /// Most buffers any reactor pool held at once (lifetime mark).
    pub buf_pool_high_water: u64,
    /// `epoll_ctl(2)` calls during the waves. Under keep-alive the
    /// coalescing ledger nets interest flips out per event-loop turn,
    /// so this grows with *connections*, not requests — the
    /// per-request ratio is the tracked number.
    pub epoll_ctl_calls: u64,
    /// Interest updates absorbed by the ledger before reaching the
    /// kernel (each one is an `epoll_ctl` that never happened).
    pub interest_coalesced: u64,
    /// io_uring submission-queue entries pushed (0 on epoll).
    pub sqe_submitted: u64,
    /// io_uring completions reaped (0 on epoll).
    pub cqe_completed: u64,
    /// Per-reactor active backend labels (after any io_uring → epoll
    /// construction fallback).
    pub backends: Vec<String>,
}

/// [`run`] at wire scale: `conns` (≥ 2000 enforced here) sockets held
/// open through the request waves while the refresher keeps writing,
/// with the engine's wire-path counters recorded across the measured
/// interval. This is the tentpole scalability number: p99 under
/// concurrent refresh at thousands of connections.
///
/// # Errors
///
/// Propagates socket failures (a too-low `ulimit -n` being the usual
/// culprit at this scale).
pub fn wire(conns: usize, rounds: usize, reactors: Option<usize>) -> io::Result<LiveWireReport> {
    wire_with_backend(conns, rounds, reactors, None)
}

/// [`wire`] with the reactor backend pinned (`None` = environment
/// selection). The `live-backend` head-to-head runs this once per
/// backend.
///
/// # Errors
///
/// Propagates socket failures.
pub fn wire_with_backend(
    conns: usize,
    rounds: usize,
    reactors: Option<usize>,
    backend: Option<BackendKind>,
) -> io::Result<LiveWireReport> {
    let (bench, counters, backends) = run_inner(LiveBenchConfig {
        conns: fit_to_fd_budget(conns.max(2000)),
        rounds: rounds.max(1),
        reactors,
        reload_every: None,
        backend,
        l1_objects: None,
    })?;
    Ok(wire_report(bench, counters, backends))
}

/// Clamps a wire-scale connection count to what the fd limit can hold.
/// Origin, proxy and clients share one process here, so every bench
/// connection costs **two** fds (client socket + proxy's accepted
/// socket). The engine raises `RLIMIT_NOFILE` toward 65536 at startup —
/// including the hard limit where the process is privileged to — but a
/// hard cap it cannot lift (no `CAP_SYS_RESOURCE`) is final; running
/// into `EMFILE` mid-bench would abort the run, so clamp up front and
/// say so.
fn fit_to_fd_budget(conns: usize) -> usize {
    // Trigger the engine's one-time raise before reading the limit (it
    // normally happens inside `LiveProxy::start`, after this check).
    let _ = mutcon_sim::reactor::raise_nofile_limit(65536);
    let Ok(soft) = mutcon_sim::reactor::backend::nofile_soft_limit() else {
        return conns;
    };
    // Headroom for listeners, wakers, rings, the origin pool, stdio.
    let budget = (soft.saturating_sub(512) / 2) as usize;
    if conns > budget {
        eprintln!(
            "[livebench] RLIMIT_NOFILE {soft} cannot hold {conns} in-process \
             connection pairs; running {budget} instead"
        );
        budget
    } else {
        conns
    }
}

fn wire_report(
    bench: LiveBenchReport,
    counters: WireCounters,
    backends: Vec<String>,
) -> LiveWireReport {
    LiveWireReport {
        bench,
        writev_calls: counters.writev_calls,
        write_calls: counters.write_calls,
        accept_batches: counters.accept_batches,
        body_copies: counters.body_copies,
        buf_reuses: counters.buf_reuses,
        buf_allocs: counters.buf_allocs,
        buf_pool_high_water: counters.buf_pool_high_water,
        epoll_ctl_calls: counters.epoll_ctl_calls,
        interest_coalesced: counters.interest_coalesced,
        sqe_submitted: counters.sqe_submitted,
        cqe_completed: counters.cqe_completed,
        backends,
    }
}

/// Renders a wire report as aligned text.
pub fn render_wire(report: &LiveWireReport) -> String {
    let ctl_per_req =
        report.epoll_ctl_calls as f64 / (report.bench.requests as f64).max(1.0);
    format!(
        "{}{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n\
         {:<22} {:>12}\n{:<22} {:>12.4}\n{:<22} {:>12}\n{:<22} {:>12}\n{:<22} {:>12}\n",
        render(&report.bench),
        "writev calls",
        report.writev_calls,
        "write calls",
        report.write_calls,
        "body copies",
        report.body_copies,
        "buf reuses/allocs",
        format!("{}/{}", report.buf_reuses, report.buf_allocs),
        "pool high water",
        report.buf_pool_high_water,
        "epoll_ctl calls",
        format!("{} ({} coalesced)", report.epoll_ctl_calls, report.interest_coalesced),
        "epoll_ctl per request",
        ctl_per_req,
        "sqe submitted",
        report.sqe_submitted,
        "cqe completed",
        report.cqe_completed,
        "backends",
        report.backends.join(","),
    )
}

/// The wire report as a JSON object fragment for `BENCH_repro.json`'s
/// `live_wire` section.
pub fn json_wire_fragment(report: &LiveWireReport) -> String {
    let backends: Vec<String> = report
        .backends
        .iter()
        .map(|b| format!("\"{b}\""))
        .collect();
    format!(
        "{{\"conns\": {}, \"rounds\": {}, \"requests\": {}, \"reactors\": {}, \
         \"requests_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"hit_rate\": {:.3}, \"writev_calls\": {}, \"write_calls\": {}, \
         \"accept_batches\": {}, \"body_copies\": {}, \"buf_reuses\": {}, \
         \"buf_allocs\": {}, \"buf_pool_high_water\": {}, \
         \"epoll_ctl_calls\": {}, \"epoll_ctl_per_request\": {:.4}, \
         \"interest_coalesced\": {}, \"sqe_submitted\": {}, \
         \"cqe_completed\": {}, \"backends\": [{}]}}",
        report.bench.conns,
        report.bench.rounds,
        report.bench.requests,
        report.bench.reactors,
        report.bench.requests_per_sec,
        report.bench.p50_ms,
        report.bench.p99_ms,
        report.bench.hit_rate,
        report.writev_calls,
        report.write_calls,
        report.accept_batches,
        report.body_copies,
        report.buf_reuses,
        report.buf_allocs,
        report.buf_pool_high_water,
        report.epoll_ctl_calls,
        report.epoll_ctl_calls as f64 / (report.bench.requests as f64).max(1.0),
        report.interest_coalesced,
        report.sqe_submitted,
        report.cqe_completed,
        backends.join(", "),
    )
}

/// One leg of the `live-backend` head-to-head: the wire run with the
/// backend pinned.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendLeg {
    /// Which backend was requested.
    pub requested: BackendKind,
    /// The full wire report (active backends included).
    pub report: LiveWireReport,
}

/// The epoll-vs-io_uring head-to-head recorded as `live_backend`.
/// `io_uring` is `None` when the kernel refuses rings — the epoll leg
/// alone is still recorded so the snapshot never blocks on kernel
/// support.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendHeadToHead {
    /// The coalesced-interest epoll leg.
    pub epoll: BackendLeg,
    /// The raw io_uring leg (skipped without ring support).
    pub io_uring: Option<BackendLeg>,
}

/// Runs the same wire-scale load once per reactor backend and pairs the
/// results. Both legs use identical conns/rounds/reactors, so the
/// throughput, p99 and syscall counters are directly comparable.
///
/// # Errors
///
/// Propagates the first failing leg.
pub fn backend_head_to_head(
    conns: usize,
    rounds: usize,
    reactors: Option<usize>,
) -> io::Result<BackendHeadToHead> {
    let epoll = BackendLeg {
        requested: BackendKind::Epoll,
        report: wire_with_backend(conns, rounds, reactors, Some(BackendKind::Epoll))?,
    };
    let io_uring = if mutcon_sim::reactor::backend::io_uring_available() {
        Some(BackendLeg {
            requested: BackendKind::IoUring,
            report: wire_with_backend(conns, rounds, reactors, Some(BackendKind::IoUring))?,
        })
    } else {
        None
    };
    Ok(BackendHeadToHead { epoll, io_uring })
}

/// Renders the head-to-head as aligned text.
pub fn render_head_to_head(h2h: &BackendHeadToHead) -> String {
    let mut out = format!("== backend: epoll ==\n{}", render_wire(&h2h.epoll.report));
    match &h2h.io_uring {
        Some(leg) => {
            out.push_str(&format!("== backend: io_uring ==\n{}", render_wire(&leg.report)));
            let speedup = leg.report.bench.requests_per_sec
                / h2h.epoll.report.bench.requests_per_sec.max(1e-9);
            out.push_str(&format!("io_uring/epoll throughput ratio: {speedup:.3}\n"));
        }
        None => out.push_str("== backend: io_uring == (skipped: kernel refuses rings)\n"),
    }
    out
}

/// The head-to-head as a JSON object fragment for `BENCH_repro.json`'s
/// `live_backend` section.
pub fn json_head_to_head_fragment(h2h: &BackendHeadToHead) -> String {
    let io_uring = h2h
        .io_uring
        .as_ref()
        .map_or("null".to_owned(), |leg| json_wire_fragment(&leg.report));
    format!(
        "{{\"epoll\": {}, \"io_uring\": {}}}",
        json_wire_fragment(&h2h.epoll.report),
        io_uring,
    )
}

/// Runs the load once per reactor count: powers of two up to (and
/// always including) `max_reactors`. The recorded sweep is how reactor
/// scaling is tracked PR-over-PR — on a single-core CI box the numbers
/// stay flat; on real hardware they should not.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn sweep(base: LiveBenchConfig, max_reactors: usize) -> io::Result<Vec<LiveBenchReport>> {
    let max = max_reactors.max(1);
    let mut counts = Vec::new();
    let mut n = 1;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    counts.push(max);
    counts
        .into_iter()
        .map(|reactors| {
            run(LiveBenchConfig {
                reactors: Some(reactors),
                ..base
            })
        })
        .collect()
}

/// Renders the report as aligned text.
pub fn render(report: &LiveBenchReport) -> String {
    let reloading = if report.reloads > 0 {
        format!(", {} mid-load rule reloads", report.reloads)
    } else {
        String::new()
    };
    format!(
        "Live proxy load — {} reactor(s), {} connections held open, {} request waves{}\n\
         {:<22} {:>12.0}\n{:<22} {:>12.0}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n",
        report.reactors,
        report.conns,
        report.rounds,
        reloading,
        "conns/sec (open)",
        report.conns_per_sec,
        "requests/sec",
        report.requests_per_sec,
        "latency p50 (ms)",
        report.p50_ms,
        "latency p99 (ms)",
        report.p99_ms,
        "cache hit rate",
        report.hit_rate,
    )
}

/// A reactor-count sweep as a JSON array fragment for
/// `BENCH_repro.json` (one object per reactor count).
pub fn json_sweep_fragment(reports: &[LiveBenchReport]) -> String {
    let rows: Vec<String> = reports.iter().map(json_fragment).collect();
    format!("[{}]", rows.join(", "))
}

/// The report as a JSON object fragment for `BENCH_repro.json`.
pub fn json_fragment(report: &LiveBenchReport) -> String {
    format!(
        "{{\"reactors\": {}, \"conns\": {}, \"rounds\": {}, \"requests\": {}, \"open_ms\": {:.3}, \
         \"conns_per_sec\": {:.1}, \"serve_ms\": {:.3}, \"requests_per_sec\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"hit_rate\": {:.3}, \"reloads\": {}}}",
        report.reactors,
        report.conns,
        report.rounds,
        report.requests,
        report.open_ms,
        report.conns_per_sec,
        report.serve_ms,
        report.requests_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.hit_rate,
        report.reloads,
    )
}

/// Load shape for the [`overload`] wave bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadBenchConfig {
    /// Clients in the first wave; every later stage doubles it, so the
    /// ramp sweeps from around the admission limit to far past it.
    pub base_conns: usize,
    /// Wave stages (≥ 2 enforced — a plateau needs two points).
    pub stages: usize,
    /// Pinned per-partition admission limit (`aimd:min=L,max=L`): the
    /// saturation point the ramp crosses.
    pub limit: usize,
    /// Reactor threads for the proxy under test.
    pub reactors: Option<usize>,
}

impl Default for OverloadBenchConfig {
    fn default() -> Self {
        // 8, 16, 32, 64, 128 simultaneous clients against a limit of 8:
        // the first wave sits at the limit, the last is 16× past it.
        OverloadBenchConfig {
            base_conns: 8,
            stages: 5,
            limit: 8,
            reactors: Some(1),
        }
    }
}

/// One wave of the ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadStage {
    /// Simultaneous clients this wave.
    pub conns: usize,
    /// `200 OK` responses (admitted, or served from cache once the
    /// coalesced fetch lands).
    pub ok: u64,
    /// `429 Too Many Requests` responses — load shed by admission.
    pub shed: u64,
    /// Anything else: the collapse signal. Must stay zero.
    pub errors: u64,
    /// Median response latency across ALL responses, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response latency across ALL responses.
    pub p99_ms: f64,
}

/// Measured outcome of an [`overload`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Reactor threads the proxy actually ran.
    pub reactors: usize,
    /// The pinned admission limit.
    pub limit: usize,
    /// The ramp, in wave order.
    pub stages: Vec<OverloadStage>,
    /// Proxy-wide shed counter after the run (429s issued).
    pub total_shed: u64,
    /// Sheds that took the bounded-delay path (0 with `shed_delay=0`).
    pub total_shed_delayed: u64,
    /// Did the ramp actually cross saturation (any wave shed > 0)?
    pub saturated: bool,
    /// The stability verdict: zero non-429 errors AND the final wave's
    /// p99 within [`PLATEAU_FACTOR`]× of the first saturated wave's.
    pub stable: bool,
}

/// How much the final wave's p99 may exceed the first saturated wave's
/// before the run counts as a collapse rather than a plateau. Generous
/// on purpose: a genuine collapse scales p99 with offered load (16×
/// here plus queueing), while a plateau holds it near one fetch RTT.
pub const PLATEAU_FACTOR: f64 = 25.0;

/// Noise floor for the plateau comparison: sub-5 ms p99s are loopback
/// jitter, not signal.
const PLATEAU_FLOOR_MS: f64 = 5.0;

/// Runs the overload ramp: per stage, `base_conns · 2^stage` clients
/// simultaneously hit one cold key (`/rampN`, a fresh path-partition per
/// stage so each wave faces the limiter at its configured initial), with
/// the admission limiter pinned at `limit` and the pool limiter live.
/// The admitted requests coalesce onto one origin fetch; the excess is
/// shed with `429`. Stage latencies cover every response — shed ones
/// included, because fast rejection IS the mechanism under test.
///
/// # Errors
///
/// Propagates socket failures and admin-plane rejections.
pub fn overload(config: OverloadBenchConfig) -> io::Result<OverloadReport> {
    let base = config.base_conns.max(1);
    let stages = config.stages.max(2);
    let limit = config.limit.max(1);

    let mut builder = LiveOrigin::builder();
    let paths: Vec<String> = (0..stages).map(|s| format!("/ramp{s}")).collect();
    for path in &paths {
        builder = builder.object(path.clone(), bench_trace());
    }
    let origin = builder.start()?;

    // Stages overlap briefly (old sockets linger until the reactor reaps
    // the close), so bound by the whole ramp plus headroom.
    let total: usize = (0..stages).map(|s| base << s).sum();
    let proxy = LiveProxy::start(ProxyConfig {
        reactors: config.reactors,
        max_conns: Some(mutcon_live::server::max_conns().max(total + 64)),
        ..ProxyConfig::new(origin.local_addr())
    })?;
    let addr = proxy.local_addr();

    // Admission pinned at the saturation point, pool limiter live so
    // fetch samples flow through the shared LIMD machinery too.
    let body = format!(
        "admission=aimd:min={limit},max={limit}\npool=aimd\nadmission_initial={limit}\n"
    );
    let overload_config = mutcon_live::overload::parse_overload_body(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    proxy
        .overload()
        .install(overload_config)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    let mut report_stages = Vec::with_capacity(stages);
    for (stage, path) in paths.iter().enumerate() {
        let conns = base << stage;
        let wire = Request::get(path).build().to_bytes();
        let mut socks = Vec::with_capacity(conns);
        for _ in 0..conns {
            let sock = TcpStream::connect(addr)?;
            sock.set_read_timeout(Some(StdDuration::from_secs(30)))?;
            sock.set_nodelay(true)?;
            socks.push(sock);
        }
        // The flash crowd: every request is on the wire before any
        // response is read.
        let mut sent_at = Vec::with_capacity(conns);
        for sock in &mut socks {
            sent_at.push(Instant::now());
            sock.write_all(&wire)?;
        }
        let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
        let mut latencies_ms = Vec::with_capacity(conns);
        for (sock, sent) in socks.iter_mut().zip(&sent_at) {
            let mut buf = BytesMut::new();
            let resp = read_response(sock, &mut buf)?;
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
            match resp.status() {
                StatusCode::OK => ok += 1,
                StatusCode::TOO_MANY_REQUESTS => shed += 1,
                _ => errors += 1,
            }
        }
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        report_stages.push(OverloadStage {
            conns,
            ok,
            shed,
            errors,
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
        });
    }

    let snapshot = proxy.overload().snapshot(proxy.reactor_count());
    let saturated = report_stages.iter().any(|s| s.shed > 0);
    let errors: u64 = report_stages.iter().map(|s| s.errors).sum();
    let plateau = match report_stages.iter().find(|s| s.shed > 0) {
        Some(first_saturated) => {
            let reference = first_saturated.p99_ms.max(PLATEAU_FLOOR_MS);
            report_stages.last().is_some_and(|last| {
                last.p99_ms <= PLATEAU_FACTOR * reference
            })
        }
        // Never saturated: nothing to plateau over.
        None => true,
    };
    Ok(OverloadReport {
        reactors: proxy.reactor_count(),
        limit,
        stages: report_stages,
        total_shed: snapshot.shed,
        total_shed_delayed: snapshot.shed_delayed,
        saturated,
        stable: errors == 0 && plateau,
    })
}

/// Renders the overload ramp as aligned text.
pub fn render_overload(report: &OverloadReport) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "Overload ramp — {} reactor(s), admission limit {}, {} waves\n\
         {:>8} {:>6} {:>6} {:>7} {:>10} {:>10}\n",
        report.reactors,
        report.limit,
        report.stages.len(),
        "conns",
        "ok",
        "shed",
        "errors",
        "p50 (ms)",
        "p99 (ms)",
    );
    for s in &report.stages {
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>6} {:>7} {:>10.3} {:>10.3}",
            s.conns, s.ok, s.shed, s.errors, s.p50_ms, s.p99_ms
        );
    }
    let _ = writeln!(
        out,
        "shed {} (delayed {}), saturated: {}, stable: {}",
        report.total_shed, report.total_shed_delayed, report.saturated, report.stable
    );
    out
}

/// The overload report as a JSON object fragment for
/// `BENCH_repro.json`'s `live_overload` section.
pub fn json_overload_fragment(report: &OverloadReport) -> String {
    let stages: Vec<String> = report
        .stages
        .iter()
        .map(|s| {
            format!(
                "{{\"conns\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                s.conns, s.ok, s.shed, s.errors, s.p50_ms, s.p99_ms
            )
        })
        .collect();
    format!(
        "{{\"reactors\": {}, \"limit\": {}, \"total_shed\": {}, \
         \"total_shed_delayed\": {}, \"saturated\": {}, \"stable\": {}, \
         \"stages\": [{}]}}",
        report.reactors,
        report.limit,
        report.total_shed,
        report.total_shed_delayed,
        report.saturated,
        report.stable,
        stages.join(", "),
    )
}

/// Load shape for the [`zipf`] cache-pressure bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfBenchConfig {
    /// Catalog size — must overflow the L2 so evictions are real.
    pub objects: usize,
    /// Concurrently open client connections (one Zipf stream each).
    pub conns: usize,
    /// Request waves issued across all connections.
    pub rounds: usize,
    /// Reactor threads for the proxy under test.
    pub reactors: Option<usize>,
    /// Catalog seed: both legs replay the identical request sequence.
    pub seed: u64,
}

impl Default for ZipfBenchConfig {
    fn default() -> Self {
        // 512 objects against a 128-object L2: with s = 1 the hot 128
        // ranks hold ~80% of the mass, so a steady ~20% of requests land
        // in the evicting tail — real cache pressure, CI-sized.
        ZipfBenchConfig {
            objects: 512,
            conns: 32,
            rounds: 40,
            reactors: Some(2),
            seed: 42,
        }
    }
}

/// Hottest ranks given a refresher rule, so version bumps (the L1
/// invalidation signal) keep landing on exactly the paths the L1 holds.
const ZIPF_HOT_RULES: usize = 8;

/// One leg of the [`zipf`] bench (L1 enabled or disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfLegReport {
    /// Per-reactor L1 capacity this leg ran with (0 = disabled).
    pub l1_capacity: usize,
    /// Total requests served.
    pub requests: u64,
    /// Wall-clock of the request waves, milliseconds.
    pub serve_ms: f64,
    /// Sustained request throughput.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses marked `x-cache: hit` (L1 or L2).
    pub hit_rate: f64,
    /// Client-observed staleness: responses whose `x-last-modified-ms`
    /// regressed below a stamp already seen for the same path on the
    /// same connection. The end-to-end stale-serve measure — must be 0.
    pub stale_responses: u64,
    /// L1 hits (responses served without touching an L2 shard lock).
    pub l1_hits: u64,
    /// L1 entries rejected by the version compare (fell through to L2).
    pub l1_stale_rejects: u64,
    /// L1 serves that raced an invalidation (post-serve audit; bounded
    /// by Δ, and 0 in every observed run).
    pub l1_stale_serves: u64,
    /// L1 refills from L2 after a miss or stale reject.
    pub l1_refills: u64,
    /// L1 entries displaced by capacity.
    pub l1_evictions: u64,
    /// L2 (sharded cache) evictions — proof the catalog overflowed it.
    pub l2_evictions: u64,
    /// Per-path version bumps in the L2 shards (stores + evictions).
    pub version_bumps: u64,
    /// Hit-path LRU touches skipped because the entry was already
    /// most-recent (reads that never queued on a shard write lock).
    pub touch_skips: u64,
}

/// Measured outcome of a [`zipf`] run: the same seeded request sequence
/// driven through the proxy twice — L1 enabled, then disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfReport {
    /// Catalog size.
    pub objects: usize,
    /// Zipf exponent (s ≈ 1.0, the classic web law).
    pub exponent: f64,
    /// L2 capacity the proxy ran with.
    pub cache_objects: usize,
    /// Connections per leg.
    pub conns: usize,
    /// Request waves per leg.
    pub rounds: usize,
    /// Reactor threads the proxy actually ran.
    pub reactors: usize,
    /// Catalog seed.
    pub seed: u64,
    /// The leg with the per-reactor L1 enabled.
    pub l1_on: ZipfLegReport,
    /// The leg with the L1 disabled (`l1_objects = 0`).
    pub l1_off: ZipfLegReport,
    /// Zero stale serves, both audits, both legs: the engine's
    /// post-serve version audit AND the client-side stamp-monotonicity
    /// check counted nothing.
    pub coherent: bool,
    /// Both legs actually evicted from L2 — the catalog really did
    /// overflow the cache, so the L1 was proven under pressure.
    pub pressured: bool,
    /// The L1 leg served real L1 hits (each one a response that touched
    /// no L2 shard lock) and the disabled leg served none.
    pub effective: bool,
}

/// A cold object's trace: one stamped version, never updated. Tail
/// objects stay byte-stable so any staleness the client observes is the
/// L1's fault, not the workload's.
fn zipf_cold_trace(name: &str, rank: usize) -> UpdateTrace {
    let total_ms = 600_000u64;
    let events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(rank as f64))];
    UpdateTrace::new(name, Timestamp::ZERO, Timestamp::from_millis(total_ms), events)
        .expect("single-event trace")
}

/// Runs one leg: the full proxy stack with `l1_objects` pinned, the
/// catalog's seeded request streams replayed wave by wave, and the
/// engine counters scraped from `GET /admin/stats` afterwards — so the
/// leg also proves the admin-plane reporting end to end.
fn zipf_leg(
    config: &ZipfBenchConfig,
    catalog: &mutcon_traces::generator::ZipfCatalog,
    cache_objects: usize,
    l1_objects: usize,
) -> io::Result<ZipfLegReport> {
    let conns = config.conns.max(1);
    let rounds = config.rounds.max(1);

    let mut builder = LiveOrigin::builder();
    for (rank, path) in catalog.paths().iter().enumerate() {
        if rank < ZIPF_HOT_RULES {
            // Hot ranks update every 25 ms — the refresher keeps
            // storing newer bodies, each store a version bump that must
            // invalidate every reactor's L1 copy.
            builder = builder.object(path.clone(), bench_trace());
        } else {
            builder = builder.object(path.clone(), zipf_cold_trace(path, rank));
        }
    }
    let origin = builder.start()?;

    let rules: Vec<RefreshRule> = catalog.paths()[..ZIPF_HOT_RULES.min(catalog.len())]
        .iter()
        .map(|p| RefreshRule::new(p.clone(), Duration::from_millis(50)))
        .collect();
    let proxy = LiveProxy::start(ProxyConfig {
        rules,
        cache_objects: Some(cache_objects),
        reactors: config.reactors,
        max_conns: Some(mutcon_live::server::max_conns().max(conns + 8)),
        l1_objects: Some(l1_objects),
        ..ProxyConfig::new(origin.local_addr())
    })?;
    let addr = proxy.local_addr();

    let mut socks = Vec::with_capacity(conns);
    for _ in 0..conns {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(StdDuration::from_secs(30)))?;
        sock.set_nodelay(true)?;
        socks.push(sock);
    }
    // One deterministic Zipf stream per connection, forked from the
    // catalog seed: the L1-on and L1-off legs replay identical
    // sequences, so their numbers compare request-for-request.
    let mut streams: Vec<_> = (0..conns).map(|i| catalog.stream_rng(i as u64)).collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * rounds);
    let mut hits = 0u64;
    let mut stale_responses = 0u64;
    // Per-connection per-path newest stamp seen: a later response for
    // the same path with an older stamp is a stale serve, observed from
    // the outside with no knowledge of the engine's internals.
    let mut newest: Vec<std::collections::HashMap<usize, Timestamp>> =
        (0..conns).map(|_| std::collections::HashMap::new()).collect();
    let serve_started = Instant::now();
    for _round in 0..rounds {
        let mut wave: Vec<(usize, Instant)> = Vec::with_capacity(conns);
        for (i, sock) in socks.iter_mut().enumerate() {
            let rank = catalog.sample(&mut streams[i]);
            let wire = Request::get(catalog.path(rank)).build().to_bytes();
            wave.push((rank, Instant::now()));
            sock.write_all(&wire)?;
        }
        for (i, (sock, (rank, sent))) in socks.iter_mut().zip(&wave).enumerate() {
            let mut buf = BytesMut::new();
            let resp = read_response(sock, &mut buf)?;
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("proxy returned {} for {}", resp.status(), catalog.path(*rank)),
                ));
            }
            if resp.headers().get("x-cache") == Some("hit") {
                hits += 1;
            }
            let stamp = mutcon_live::client::last_modified_ms(&resp).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "response missing stamp")
            })?;
            match newest[i].get(rank) {
                Some(&seen) if stamp < seen => stale_responses += 1,
                _ => {
                    newest[i].insert(*rank, stamp);
                }
            }
        }
    }
    let serve = serve_started.elapsed();

    // Scrape the engine counters through the admin plane — the same
    // numbers an operator would read.
    let admin = HttpClient::new();
    let resp = admin.get(addr, "/admin/stats", None)?;
    let doc = mutcon_traces::json::parse(std::str::from_utf8(resp.body()).unwrap_or_default())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("admin stats: {e}")))?;
    let counter = |path: &[&str]| -> u64 {
        let mut node = &doc;
        for key in path {
            match node.get(key) {
                Some(next) => node = next,
                None => return 0,
            }
        }
        node.as_u64().unwrap_or(0)
    };

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = (conns * rounds) as u64;
    Ok(ZipfLegReport {
        l1_capacity: l1_objects,
        requests,
        serve_ms: serve.as_secs_f64() * 1e3,
        requests_per_sec: requests as f64 / serve.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        hit_rate: hits as f64 / requests as f64,
        stale_responses,
        l1_hits: counter(&["cache", "l1", "hits"]),
        l1_stale_rejects: counter(&["cache", "l1", "stale_rejects"]),
        l1_stale_serves: counter(&["cache", "l1", "stale_serves"]),
        l1_refills: counter(&["cache", "l1", "refills"]),
        l1_evictions: counter(&["cache", "l1", "evictions"]),
        l2_evictions: counter(&["cache", "evictions"]),
        version_bumps: counter(&["cache", "version_bumps"]),
        touch_skips: counter(&["cache", "touch_skips"]),
    })
}

/// Runs the Zipf cache-pressure bench: a seeded Zipf(s = 1.0) catalog
/// big enough to overflow the L2, replayed twice over identical request
/// sequences — once with the per-reactor L1 enabled, once with it
/// disabled — while the refresher churns the hottest ranks. Records
/// throughput/latency for both legs plus the coherence verdicts: the
/// engine's post-serve stale audit and the client-side stamp
/// monotonicity check must both count zero.
///
/// # Errors
///
/// Propagates socket failures and malformed admin responses.
pub fn zipf(config: ZipfBenchConfig) -> io::Result<ZipfReport> {
    let objects = config.objects.max(16);
    let cache_objects = (objects / 4).max(8);
    let catalog = mutcon_traces::generator::ZipfCatalogBuilder::new(objects)
        .seed(config.seed)
        .build()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    let l1_on = zipf_leg(&config, &catalog, cache_objects, mutcon_live::server::DEFAULT_L1_OBJECTS)?;
    let l1_off = zipf_leg(&config, &catalog, cache_objects, 0)?;

    let coherent = l1_on.l1_stale_serves == 0
        && l1_off.l1_stale_serves == 0
        && l1_on.stale_responses == 0
        && l1_off.stale_responses == 0;
    let pressured = l1_on.l2_evictions > 0 && l1_off.l2_evictions > 0;
    let effective = l1_on.l1_hits > 0 && l1_off.l1_hits == 0;
    Ok(ZipfReport {
        objects,
        exponent: catalog.exponent(),
        cache_objects,
        conns: config.conns.max(1),
        rounds: config.rounds.max(1),
        reactors: config.reactors.unwrap_or(0),
        seed: config.seed,
        l1_on,
        l1_off,
        coherent,
        pressured,
        effective,
    })
}

/// Renders the Zipf report as aligned text, one row per leg.
pub fn render_zipf(report: &ZipfReport) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "Zipf cache pressure — {} objects (s = {:.1}), L2 capacity {}, \
         {} conns × {} waves, seed {}\n\
         {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}\n",
        report.objects,
        report.exponent,
        report.cache_objects,
        report.conns,
        report.rounds,
        report.seed,
        "l1",
        "req/s",
        "p50(ms)",
        "p99(ms)",
        "hit",
        "l1 hits",
        "rejects",
        "refills",
        "l2 evic",
        "stale",
    );
    for leg in [&report.l1_on, &report.l1_off] {
        let _ = writeln!(
            out,
            "{:>8} {:>9.0} {:>9.3} {:>9.3} {:>8.3} {:>8} {:>8} {:>8} {:>8} {:>7}",
            leg.l1_capacity,
            leg.requests_per_sec,
            leg.p50_ms,
            leg.p99_ms,
            leg.hit_rate,
            leg.l1_hits,
            leg.l1_stale_rejects,
            leg.l1_refills,
            leg.l2_evictions,
            leg.l1_stale_serves + leg.stale_responses,
        );
    }
    let _ = writeln!(
        out,
        "coherent: {}, pressured: {}, effective: {}",
        report.coherent, report.pressured, report.effective
    );
    out
}

fn json_zipf_leg(leg: &ZipfLegReport) -> String {
    format!(
        "{{\"l1_capacity\": {}, \"requests\": {}, \"serve_ms\": {:.3}, \
         \"requests_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"hit_rate\": {:.3}, \"stale_responses\": {}, \"l1_hits\": {}, \
         \"l1_stale_rejects\": {}, \"l1_stale_serves\": {}, \"l1_refills\": {}, \
         \"l1_evictions\": {}, \"l2_evictions\": {}, \"version_bumps\": {}, \
         \"touch_skips\": {}}}",
        leg.l1_capacity,
        leg.requests,
        leg.serve_ms,
        leg.requests_per_sec,
        leg.p50_ms,
        leg.p99_ms,
        leg.hit_rate,
        leg.stale_responses,
        leg.l1_hits,
        leg.l1_stale_rejects,
        leg.l1_stale_serves,
        leg.l1_refills,
        leg.l1_evictions,
        leg.l2_evictions,
        leg.version_bumps,
        leg.touch_skips,
    )
}

/// The Zipf report as a JSON object fragment for `BENCH_repro.json`'s
/// `live_zipf` section.
pub fn json_zipf_fragment(report: &ZipfReport) -> String {
    format!(
        "{{\"objects\": {}, \"exponent\": {:.2}, \"cache_objects\": {}, \
         \"conns\": {}, \"rounds\": {}, \"reactors\": {}, \"seed\": {}, \
         \"coherent\": {}, \"pressured\": {}, \"effective\": {}, \
         \"l1_on\": {}, \"l1_off\": {}}}",
        report.objects,
        report.exponent,
        report.cache_objects,
        report.conns,
        report.rounds,
        report.reactors,
        report.seed,
        report.coherent,
        report.pressured,
        report.effective,
        json_zipf_leg(&report.l1_on),
        json_zipf_leg(&report.l1_off),
    )
}

/// Load shape for the [`refresh`] drift bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshBenchConfig {
    /// Rule-catalog size — every path gets a refresh rule, all due the
    /// instant the proxy starts, so the bench measures how fast the
    /// refresh plane drains a deep backlog.
    pub paths: usize,
    /// Polls after which a leg's drift histogram is snapshotted; both
    /// legs stop at the same count so their quantiles compare
    /// poll-for-poll.
    pub target_polls: u64,
    /// Poll workers for the serial leg.
    pub serial_workers: usize,
    /// Poll workers for the concurrent leg.
    pub concurrent_workers: usize,
    /// Seed mixed into each path's scripted origin latency: both legs
    /// see identical per-path service times.
    pub seed: u64,
}

impl Default for RefreshBenchConfig {
    fn default() -> Self {
        // 50k paths is ISSUE-sized: enough backlog that the serial
        // worker's drain visibly lags, small enough to start in
        // milliseconds. 2 000 polls keeps the serial leg a few seconds.
        RefreshBenchConfig {
            paths: 50_000,
            target_polls: 2_000,
            serial_workers: 1,
            concurrent_workers: 8,
            seed: 42,
        }
    }
}

/// One leg of the [`refresh`] bench.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshLegReport {
    /// Poll workers this leg ran.
    pub workers: usize,
    /// Polls recorded when the drift histogram was snapshotted.
    pub polls: u64,
    /// Wall-clock from proxy start to the snapshot, milliseconds.
    pub elapsed_ms: f64,
    /// Sustained poll throughput.
    pub polls_per_sec: f64,
    /// Median scheduled-due vs actual-send drift, milliseconds.
    pub drift_p50_ms: f64,
    /// 99th-percentile drift — the fidelity-lag headline.
    pub drift_p99_ms: f64,
    /// Worst recorded drift, milliseconds.
    pub drift_max_ms: f64,
    /// Reads the hot-path client completed during the drain.
    pub reads: u64,
    /// Reads whose `x-last-modified-ms` regressed below a stamp already
    /// seen for the same path — must be 0.
    pub stale_responses: u64,
}

/// Measured outcome of a [`refresh`] run: the identical backlog drained
/// twice, serial then concurrent.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// Rule-catalog size.
    pub paths: usize,
    /// Poll count both legs were snapshotted at.
    pub target_polls: u64,
    /// Latency seed.
    pub seed: u64,
    /// The single-worker leg.
    pub serial: RefreshLegReport,
    /// The worker-pool leg.
    pub concurrent: RefreshLegReport,
    /// `serial.drift_p99_ms / concurrent.drift_p99_ms`.
    pub p99_ratio: f64,
    /// Both legs snapshotted within 5% of the same poll count, so the
    /// drift quantiles compare like for like.
    pub polls_matched: bool,
    /// Neither leg's reader saw a stamp regress.
    pub coherent: bool,
    /// The concurrent leg cut p99 drift at least 5× — the gate the
    /// `repro live-refresh` target enforces.
    pub scaled: bool,
}

/// FNV-1a over the path, mixed with the seed: a per-path origin service
/// time in [400 µs, 2 ms] that is identical across legs.
fn scripted_latency_us(path: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    400 + h % 1_601
}

fn refresh_path(rank: usize) -> String {
    format!("/obj/{rank:05}")
}

/// A blocking thread-per-connection origin whose only behavior is a
/// scripted per-path delay before a stamped `200` — the deliberately
/// boring dependency that makes drift attributable to the refresh
/// plane's scheduling, not to origin jitter.
struct LatencyOrigin {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
}

impl LatencyOrigin {
    fn start(seed: u64) -> io::Result<LatencyOrigin> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                std::thread::spawn(move || latency_serve(stream, seed));
            }
        });
        Ok(LatencyOrigin { addr, stop })
    }
}

impl Drop for LatencyOrigin {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock the accept loop
    }
}

fn latency_serve(mut stream: TcpStream, seed: u64) {
    let _ = stream.set_nodelay(true);
    let mut buf = BytesMut::new();
    loop {
        let request = match read_request(&mut stream, &mut buf) {
            Ok(Some(request)) => request,
            Ok(None) | Err(_) => return,
        };
        std::thread::sleep(StdDuration::from_micros(scripted_latency_us(
            request.target(),
            seed,
        )));
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let response = Response::ok()
            .header(X_LAST_MODIFIED_MS, stamp.to_string())
            .body(b"refresh-bench".to_vec())
            .keep_alive()
            .build();
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Hot paths the coherence reader hammers while the backlog drains.
const REFRESH_READ_PATHS: usize = 8;

fn refresh_leg(config: &RefreshBenchConfig, workers: usize) -> io::Result<RefreshLegReport> {
    let paths = config.paths.max(64);
    let target = config.target_polls.max(50);
    let origin = LatencyOrigin::start(config.seed)?;
    // Δ = 30 s: every path is due once at start and not again within the
    // bench window, so the drift histogram holds exactly the backlog
    // drain both legs share.
    let rules: Vec<RefreshRule> = (0..paths)
        .map(|rank| RefreshRule::new(refresh_path(rank), Duration::from_secs(30)))
        .collect();
    let started = Instant::now();
    let proxy = LiveProxy::start(ProxyConfig {
        rules,
        reactors: Some(1),
        refresh_workers: Some(workers),
        cache_objects: Some(target as usize * 2 + 64),
        ..ProxyConfig::new(origin.addr)
    })?;
    let addr = proxy.local_addr();

    // The coherence reader: hammer the hot paths, fail on any stamp
    // regression — concurrency must never trade staleness for drift.
    let stop = Arc::new(AtomicBool::new(false));
    let stale = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let reader = {
        let (stop, stale, reads) = (Arc::clone(&stop), Arc::clone(&stale), Arc::clone(&reads));
        std::thread::spawn(move || {
            let client = HttpClient::with_timeout(StdDuration::from_secs(10));
            let mut newest: std::collections::HashMap<String, Timestamp> =
                std::collections::HashMap::new();
            let mut turn = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let path = refresh_path(turn % REFRESH_READ_PATHS);
                turn += 1;
                if let Ok(resp) = client.get(addr, &path, None) {
                    if resp.status() == StatusCode::OK {
                        if let Some(stamp) = mutcon_live::client::last_modified_ms(&resp) {
                            match newest.get(&path) {
                                Some(&seen) if stamp < seen => {
                                    stale.fetch_add(1, Ordering::SeqCst);
                                }
                                _ => {
                                    newest.insert(path, stamp);
                                }
                            }
                            reads.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                std::thread::sleep(StdDuration::from_millis(1));
            }
        })
    };

    let deadline = Instant::now() + StdDuration::from_secs(120);
    while proxy.runtime().refresh_metrics().polls() < target {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "refresh leg ({workers} workers) stuck at {} / {target} polls",
                    proxy.runtime().refresh_metrics().polls()
                ),
            ));
        }
        std::thread::sleep(StdDuration::from_millis(1));
    }
    let elapsed = started.elapsed();
    let polls = proxy.runtime().refresh_metrics().polls();
    let drift = proxy.runtime().refresh_metrics().drift();

    stop.store(true, Ordering::SeqCst);
    let _ = reader.join();
    drop(proxy);
    Ok(RefreshLegReport {
        workers,
        polls,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        polls_per_sec: polls as f64 / elapsed.as_secs_f64().max(1e-9),
        drift_p50_ms: drift.p50_ms,
        drift_p99_ms: drift.p99_ms,
        drift_max_ms: drift.max_ms,
        reads: reads.load(Ordering::SeqCst),
        stale_responses: stale.load(Ordering::SeqCst),
    })
}

/// Runs the refresh-plane drift bench: the same all-due-at-once rule
/// backlog drained twice over identical scripted per-path origin
/// latencies — `serial_workers` first, then `concurrent_workers` — each
/// leg snapshotted at `target_polls`. Records both legs' drift
/// quantiles plus the verdicts the `repro live-refresh` gate enforces:
/// equal poll counts (±5%), zero stale serves, and a ≥5× p99 cut.
///
/// # Errors
///
/// Propagates socket failures; a leg that cannot reach `target_polls`
/// within two minutes reports `TimedOut`.
pub fn refresh(config: RefreshBenchConfig) -> io::Result<RefreshReport> {
    let serial = refresh_leg(&config, config.serial_workers.max(1))?;
    let concurrent = refresh_leg(&config, config.concurrent_workers.max(1))?;

    let p99_ratio = serial.drift_p99_ms / concurrent.drift_p99_ms.max(1e-3);
    let widest = serial.polls.max(concurrent.polls) as f64;
    let polls_matched = (serial.polls.abs_diff(concurrent.polls) as f64) / widest <= 0.05;
    let coherent = serial.stale_responses == 0 && concurrent.stale_responses == 0;
    let scaled = p99_ratio >= 5.0;
    Ok(RefreshReport {
        paths: config.paths.max(64),
        target_polls: config.target_polls.max(50),
        seed: config.seed,
        serial,
        concurrent,
        p99_ratio,
        polls_matched,
        coherent,
        scaled,
    })
}

/// Renders the refresh report as aligned text, one row per leg.
pub fn render_refresh(report: &RefreshReport) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "Refresh-plane drift — {} paths all due at once, snapshotted at \
         {} polls, seed {}\n\
         {:>8} {:>8} {:>10} {:>9} {:>11} {:>11} {:>11} {:>7} {:>6}\n",
        report.paths,
        report.target_polls,
        report.seed,
        "workers",
        "polls",
        "elapsed",
        "polls/s",
        "p50 drift",
        "p99 drift",
        "max drift",
        "reads",
        "stale",
    );
    for leg in [&report.serial, &report.concurrent] {
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>8.0}ms {:>9.0} {:>9.1}ms {:>9.1}ms {:>9.1}ms {:>7} {:>6}",
            leg.workers,
            leg.polls,
            leg.elapsed_ms,
            leg.polls_per_sec,
            leg.drift_p50_ms,
            leg.drift_p99_ms,
            leg.drift_max_ms,
            leg.reads,
            leg.stale_responses,
        );
    }
    let _ = writeln!(
        out,
        "p99 ratio: {:.1}x (gate: >= 5x), polls matched: {}, coherent: {}, scaled: {}",
        report.p99_ratio, report.polls_matched, report.coherent, report.scaled
    );
    out
}

fn json_refresh_leg(leg: &RefreshLegReport) -> String {
    format!(
        "{{\"workers\": {}, \"polls\": {}, \"elapsed_ms\": {:.3}, \
         \"polls_per_sec\": {:.1}, \"drift_p50_ms\": {:.3}, \
         \"drift_p99_ms\": {:.3}, \"drift_max_ms\": {:.3}, \"reads\": {}, \
         \"stale_responses\": {}}}",
        leg.workers,
        leg.polls,
        leg.elapsed_ms,
        leg.polls_per_sec,
        leg.drift_p50_ms,
        leg.drift_p99_ms,
        leg.drift_max_ms,
        leg.reads,
        leg.stale_responses,
    )
}

/// The refresh report as a JSON object fragment for `BENCH_repro.json`'s
/// `live_refresh` section.
pub fn json_refresh_fragment(report: &RefreshReport) -> String {
    format!(
        "{{\"paths\": {}, \"target_polls\": {}, \"seed\": {}, \
         \"p99_ratio\": {:.2}, \"polls_matched\": {}, \"coherent\": {}, \
         \"scaled\": {}, \"serial\": {}, \"concurrent\": {}}}",
        report.paths,
        report.target_polls,
        report.seed,
        report.p99_ratio,
        report.polls_matched,
        report.coherent,
        report.scaled,
        json_refresh_leg(&report.serial),
        json_refresh_leg(&report.concurrent),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_numbers() {
        let report = run(LiveBenchConfig {
            conns: 24,
            rounds: 2,
            reactors: Some(2),
            reload_every: None,
            backend: None,
            l1_objects: None,
        })
        .expect("bench run");
        assert_eq!(report.conns, 24);
        assert_eq!(report.requests, 48);
        assert_eq!(report.reactors, 2);
        assert_eq!(report.reloads, 0);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.conns_per_sec > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.hit_rate > 0.5, "hit rate {}", report.hit_rate);
        let text = render(&report);
        assert!(text.contains("requests/sec"));
        let json = json_fragment(&report);
        assert!(json.contains("\"requests\": 48"));
        assert!(json.contains("\"reactors\": 2"));
        assert!(json.contains("\"reloads\": 0"));
    }

    #[test]
    fn wire_counters_prove_zero_copy_serving() {
        // A bench-shaped run small enough for a test: the serve-phase
        // counter deltas must show the zero-copy story — every response
        // leaves via a gather write, no body bytes are ever copied.
        let (bench, counters, backends) = run_inner(LiveBenchConfig {
            conns: 24,
            rounds: 2,
            reactors: Some(1),
            reload_every: None,
            backend: None,
            l1_objects: None,
        })
        .expect("wire run");
        assert_eq!(bench.requests, 48);
        assert_eq!(counters.body_copies, 0, "hit path must not copy bodies");
        assert!(
            counters.writev_calls >= bench.requests,
            "every hit should gather-write: {} writev for {} requests",
            counters.writev_calls,
            bench.requests
        );
        assert_eq!(backends.len(), 1);
        let report = wire_report(bench, counters, backends);
        let text = render_wire(&report);
        assert!(text.contains("writev calls"));
        assert!(text.contains("pool high water"));
        assert!(text.contains("epoll_ctl per request"));
        let json = json_wire_fragment(&report);
        assert!(json.contains("\"requests\": 48"));
        assert!(json.contains("\"body_copies\": 0"));
        assert!(json.contains("\"buf_pool_high_water\": "));
        assert!(json.contains("\"epoll_ctl_calls\": "));
        assert!(json.contains("\"backends\": [\""));
    }

    #[test]
    fn reload_run_swaps_rules_mid_load() {
        let report = run(LiveBenchConfig {
            conns: 16,
            rounds: 6,
            reactors: Some(2),
            reload_every: Some(2),
            backend: None,
            l1_objects: None,
        })
        .expect("reload bench run");
        // Waves 2 and 4 reload (wave 0 never does); every request is
        // still served across the swaps.
        assert_eq!(report.reloads, 2);
        assert_eq!(report.requests, 96);
        assert!(report.hit_rate > 0.5, "hit rate {}", report.hit_rate);
        assert!(render(&report).contains("2 mid-load rule reloads"));
        assert!(json_fragment(&report).contains("\"reloads\": 2"));
    }

    #[test]
    fn sweep_covers_powers_of_two_up_to_max() {
        let reports = sweep(
            LiveBenchConfig {
                conns: 8,
                rounds: 1,
                reactors: None,
                reload_every: None,
                backend: None,
                l1_objects: None,
            },
            4,
        )
        .expect("sweep run");
        let counts: Vec<usize> = reports.iter().map(|r| r.reactors).collect();
        assert_eq!(counts, vec![1, 2, 4]);
        let json = json_sweep_fragment(&reports);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"reactors\": 4"));
    }

    #[test]
    fn overload_ramp_sheds_and_stays_stable() {
        let report = overload(OverloadBenchConfig {
            base_conns: 8,
            stages: 3,
            limit: 4,
            reactors: Some(1),
        })
        .expect("overload run");
        assert_eq!(report.reactors, 1);
        assert_eq!(report.limit, 4);
        let conns: Vec<usize> = report.stages.iter().map(|s| s.conns).collect();
        assert_eq!(conns, vec![8, 16, 32]);
        for s in &report.stages {
            assert_eq!(s.ok + s.shed, s.conns as u64, "every client got an answer");
            assert_eq!(s.errors, 0);
        }
        assert!(report.saturated, "32 clients vs limit 4 must shed: {report:?}");
        assert!(report.stable, "the controlled ramp must not collapse: {report:?}");
        assert_eq!(
            report.total_shed,
            report.stages.iter().map(|s| s.shed).sum::<u64>()
        );
        let text = render_overload(&report);
        assert!(text.contains("admission limit 4"));
        assert!(text.contains("stable: true"));
        let json = json_overload_fragment(&report);
        assert!(json.contains("\"limit\": 4"));
        assert!(json.contains("\"saturated\": true"));
        assert!(json.contains("\"stable\": true"));
    }

    #[test]
    fn zipf_legs_replay_one_sequence_and_stay_coherent() {
        // A CI-sized pressure run: 64 objects against a 16-object L2,
        // refresher churning the hot ranks, same seed for both legs.
        let report = zipf(ZipfBenchConfig {
            objects: 64,
            conns: 8,
            rounds: 30,
            reactors: Some(2),
            seed: 7,
        })
        .expect("zipf run");
        assert_eq!(report.cache_objects, 16);
        assert_eq!(report.l1_on.requests, 240);
        assert_eq!(report.l1_off.requests, 240);
        assert!(report.pressured, "catalog must overflow the L2: {report:?}");
        assert!(report.effective, "L1 leg must serve L1 hits: {report:?}");
        assert!(report.coherent, "no stale serve may be counted: {report:?}");
        assert_eq!(report.l1_off.l1_refills, 0, "disabled leg has no L1");
        let text = render_zipf(&report);
        assert!(text.contains("coherent: true"));
        assert!(text.contains("L2 capacity 16"));
        let json = json_zipf_fragment(&report);
        assert!(json.contains("\"coherent\": true"));
        assert!(json.contains("\"l1_on\": {"));
        assert!(json.contains("\"stale_responses\": 0"));
    }

    #[test]
    fn refresh_legs_drain_the_same_backlog_coherently() {
        // CI-sized: a 512-path backlog snapshotted at 120 polls. The
        // ≥5× gate belongs to the full-scale repro target; here the
        // pool must merely beat the single worker while staying
        // coherent at equal poll counts.
        let report = refresh(RefreshBenchConfig {
            paths: 512,
            target_polls: 120,
            serial_workers: 1,
            concurrent_workers: 4,
            seed: 7,
        })
        .expect("refresh run");
        assert!(report.serial.polls >= 120 && report.concurrent.polls >= 120);
        assert!(report.polls_matched, "legs must stop together: {report:?}");
        assert!(report.coherent, "no stale serve may be counted: {report:?}");
        assert!(
            report.p99_ratio > 1.5,
            "4 workers must visibly cut drift: {report:?}"
        );
        assert_eq!(report.serial.workers, 1);
        assert_eq!(report.concurrent.workers, 4);
        let text = render_refresh(&report);
        assert!(text.contains("coherent: true"));
        assert!(text.contains("512 paths"));
        let json = json_refresh_fragment(&report);
        assert!(json.contains("\"coherent\": true"));
        assert!(json.contains("\"serial\": {"));
        assert!(json.contains("\"stale_responses\": 0"));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.99), 4.0);
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
    }
}
