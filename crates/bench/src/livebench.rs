//! `repro live-bench` — a load generator for the reactor-driven live
//! proxy.
//!
//! Spins up a real origin (fast-ticking object) and a real proxy with a
//! refresher rule, then drives `conns` *simultaneously open* client
//! connections through the proxy's single reactor thread for `rounds`
//! request waves. Every wave writes one `GET` on every socket before
//! reading any response, so all `conns` connections have a request in
//! flight at once — the readiness-driven engine is measured, not the
//! client's politeness.
//!
//! Reported: connection-establishment rate (conns/sec), sustained
//! request throughput (requests/sec), and per-request latency p50/p99.
//! `repro all` embeds the numbers as the `live_bench` section of
//! `BENCH_repro.json`, so proxy scalability is tracked PR-over-PR
//! alongside the simulation engine's wall-clocks.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration as StdDuration, Instant};

use bytes::BytesMut;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_http::message::Request;
use mutcon_http::types::StatusCode;
use mutcon_live::client::HttpClient;
use mutcon_live::origin::LiveOrigin;
use mutcon_live::proxy::{LiveProxy, ProxyConfig, RefreshRule};
use mutcon_live::wire::read_response;
use mutcon_traces::{UpdateEvent, UpdateTrace};

/// Load shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveBenchConfig {
    /// Concurrently open client connections.
    pub conns: usize,
    /// Request waves issued across all connections.
    pub rounds: usize,
    /// Reactor threads for the proxy under test (`None` = the
    /// `MUTCON_LIVE_REACTORS` / one-per-core default).
    pub reactors: Option<usize>,
}

impl Default for LiveBenchConfig {
    fn default() -> Self {
        // Modest enough for 1-core CI, still two hundred sockets deep.
        LiveBenchConfig {
            conns: 200,
            rounds: 5,
            reactors: None,
        }
    }
}

/// Measured outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveBenchReport {
    /// Reactor threads the proxy actually ran.
    pub reactors: usize,
    /// Connections opened (and held open throughout).
    pub conns: usize,
    /// Request waves.
    pub rounds: usize,
    /// Total requests served (`conns · rounds`).
    pub requests: u64,
    /// Wall-clock to open all connections, milliseconds.
    pub open_ms: f64,
    /// Connection-establishment rate.
    pub conns_per_sec: f64,
    /// Wall-clock of the request waves, milliseconds.
    pub serve_ms: f64,
    /// Sustained request throughput.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Fraction of responses served from the proxy cache.
    pub hit_rate: f64,
}

/// An object updated every 25 ms — fast enough that the refresher keeps
/// writing (shard write locks!) all through the measurement.
fn bench_trace() -> UpdateTrace {
    let total_ms = 600_000u64;
    let mut events = vec![UpdateEvent::valued(Timestamp::ZERO, Value::new(1.0))];
    let mut t = 25u64;
    while t <= total_ms {
        events.push(UpdateEvent::valued(
            Timestamp::from_millis(t),
            Value::new(1.0 + t as f64),
        ));
        t += 25;
    }
    UpdateTrace::new("bench", Timestamp::ZERO, Timestamp::from_millis(total_ms), events)
        .expect("monotone events")
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the load.
///
/// # Errors
///
/// Propagates socket failures (including hitting the file-descriptor
/// limit when `conns` is oversized for the environment).
pub fn run(config: LiveBenchConfig) -> io::Result<LiveBenchReport> {
    let conns = config.conns.max(1);
    let rounds = config.rounds.max(1);

    let origin = LiveOrigin::builder().object("/obj", bench_trace()).start()?;
    let proxy = LiveProxy::start(ProxyConfig {
        origin_addr: origin.local_addr(),
        rules: vec![RefreshRule::new("/obj", Duration::from_millis(50))],
        group: None,
        cache_objects: None,
        reactors: config.reactors,
    })?;
    let addr = proxy.local_addr();

    // Warm the cache so the measured path is hit-dominated.
    let warm = HttpClient::new();
    let warm_resp = warm.get(addr, "/obj", None)?;
    if warm_resp.status() != StatusCode::OK {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("warm-up returned {}", warm_resp.status()),
        ));
    }

    // Phase 1: establish every connection, all held open.
    let open_started = Instant::now();
    let mut socks = Vec::with_capacity(conns);
    for _ in 0..conns {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(StdDuration::from_secs(30)))?;
        sock.set_nodelay(true)?;
        socks.push(sock);
    }
    let open = open_started.elapsed();

    // Phase 2: `rounds` waves of one request per connection; all writes
    // land before any read, so every connection is in flight at once.
    let wire = Request::get("/obj").build().to_bytes();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(conns * rounds);
    let mut hits = 0u64;
    let serve_started = Instant::now();
    for _ in 0..rounds {
        let mut sent_at = Vec::with_capacity(conns);
        for sock in &mut socks {
            sent_at.push(Instant::now());
            sock.write_all(&wire)?;
        }
        for (sock, sent) in socks.iter_mut().zip(&sent_at) {
            let mut buf = BytesMut::new();
            let resp = read_response(sock, &mut buf)?;
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
            if resp.status() != StatusCode::OK {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("proxy returned {}", resp.status()),
                ));
            }
            if resp.headers().get("x-cache") == Some("hit") {
                hits += 1;
            }
        }
    }
    let serve = serve_started.elapsed();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = (conns * rounds) as u64;
    Ok(LiveBenchReport {
        reactors: proxy.reactor_count(),
        conns,
        rounds,
        requests,
        open_ms: open.as_secs_f64() * 1e3,
        conns_per_sec: conns as f64 / open.as_secs_f64().max(1e-9),
        serve_ms: serve.as_secs_f64() * 1e3,
        requests_per_sec: requests as f64 / serve.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        hit_rate: hits as f64 / requests as f64,
    })
}

/// Runs the load once per reactor count: powers of two up to (and
/// always including) `max_reactors`. The recorded sweep is how reactor
/// scaling is tracked PR-over-PR — on a single-core CI box the numbers
/// stay flat; on real hardware they should not.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn sweep(base: LiveBenchConfig, max_reactors: usize) -> io::Result<Vec<LiveBenchReport>> {
    let max = max_reactors.max(1);
    let mut counts = Vec::new();
    let mut n = 1;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    counts.push(max);
    counts
        .into_iter()
        .map(|reactors| {
            run(LiveBenchConfig {
                reactors: Some(reactors),
                ..base
            })
        })
        .collect()
}

/// Renders the report as aligned text.
pub fn render(report: &LiveBenchReport) -> String {
    format!(
        "Live proxy load — {} reactor(s), {} connections held open, {} request waves\n\
         {:<22} {:>12.0}\n{:<22} {:>12.0}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n{:<22} {:>12.3}\n",
        report.reactors,
        report.conns,
        report.rounds,
        "conns/sec (open)",
        report.conns_per_sec,
        "requests/sec",
        report.requests_per_sec,
        "latency p50 (ms)",
        report.p50_ms,
        "latency p99 (ms)",
        report.p99_ms,
        "cache hit rate",
        report.hit_rate,
    )
}

/// A reactor-count sweep as a JSON array fragment for
/// `BENCH_repro.json` (one object per reactor count).
pub fn json_sweep_fragment(reports: &[LiveBenchReport]) -> String {
    let rows: Vec<String> = reports.iter().map(json_fragment).collect();
    format!("[{}]", rows.join(", "))
}

/// The report as a JSON object fragment for `BENCH_repro.json`.
pub fn json_fragment(report: &LiveBenchReport) -> String {
    format!(
        "{{\"reactors\": {}, \"conns\": {}, \"rounds\": {}, \"requests\": {}, \"open_ms\": {:.3}, \
         \"conns_per_sec\": {:.1}, \"serve_ms\": {:.3}, \"requests_per_sec\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"hit_rate\": {:.3}}}",
        report.reactors,
        report.conns,
        report.rounds,
        report.requests,
        report.open_ms,
        report.conns_per_sec,
        report.serve_ms,
        report.requests_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.hit_rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_numbers() {
        let report = run(LiveBenchConfig {
            conns: 24,
            rounds: 2,
            reactors: Some(2),
        })
        .expect("bench run");
        assert_eq!(report.conns, 24);
        assert_eq!(report.requests, 48);
        assert_eq!(report.reactors, 2);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.conns_per_sec > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.hit_rate > 0.5, "hit rate {}", report.hit_rate);
        let text = render(&report);
        assert!(text.contains("requests/sec"));
        let json = json_fragment(&report);
        assert!(json.contains("\"requests\": 48"));
        assert!(json.contains("\"reactors\": 2"));
    }

    #[test]
    fn sweep_covers_powers_of_two_up_to_max() {
        let reports = sweep(
            LiveBenchConfig {
                conns: 8,
                rounds: 1,
                reactors: None,
            },
            4,
        )
        .expect("sweep run");
        let counts: Vec<usize> = reports.iter().map(|r| r.reactors).collect();
        assert_eq!(counts, vec![1, 2, 4]);
        let json = json_sweep_fragment(&reports);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"reactors\": 4"));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.99), 4.0);
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
    }
}
