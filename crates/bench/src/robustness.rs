//! Robustness of the paper's results across synthetic "collections".
//!
//! The 2001 evaluation measured one real collection window per workload.
//! Our traces are calibrated synthetics, so we can do better: regenerate
//! each workload under R different seeds (R independent "collection
//! runs") and re-run the experiment grids on every realization. If the
//! comparative claims hold across all realizations — not just the pinned
//! catalog seed — the reproduction is robust to trace randomness.
//!
//! Beyond the three figure grids, the sweep covers the four ablation
//! grids (LIMD aggressiveness, violation detection, heuristic threshold,
//! α-blend) and a **multi-object group**: all four temporal traces
//! coordinated as one Mt group — the paper only ever pairs two objects,
//! so this probes the n > 2 regime its §4 algorithms claim to cover.
//!
//! This is also the experiment engine's scaling workload: R repeats ×
//! (eight grids) of fully independent simulations, fanned out by
//! [`mutcon_sim::parallel::run_all`]. `repro bench`/`repro all` run it
//! and record the wall-clock in `BENCH_repro.json`.

use mutcon_core::limd::LimdConfig;
use mutcon_core::mutual::temporal::MtPolicy;
use mutcon_core::object::ObjectId;
use mutcon_core::time::Duration;
use mutcon_proxy::ablation;
use mutcon_proxy::drivers::{
    run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig, TemporalSimOutput,
};
use mutcon_proxy::experiment::{
    individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep,
};
use mutcon_proxy::metrics;
use mutcon_proxy::origin::OriginServer;
use mutcon_sim::parallel::run_all;
use mutcon_traces::{NamedTrace, UpdateTrace};

use crate::{
    fig3_deltas, fig5_deltas, fig7_deltas, fig8_delta, fixed_delta, paper_fig3_config,
    paper_fig7_config, FIG3_TRACE, FIG5_PAIR, VALUE_PAIR,
};

/// Seed offset between successive synthetic collections (arbitrary, just
/// far enough apart to avoid overlapping generator streams).
const SEED_STRIDE: u64 = 0x0001_0000;

/// Aggregate of one figure grid across all realizations.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Which grid ("fig3", "fig5", "fig7").
    pub grid: &'static str,
    /// Realizations evaluated.
    pub runs: usize,
    /// Total polls across all realizations (adaptive policy only).
    pub polls_total: u64,
    /// Mean total polls per realization (adaptive policy only).
    pub polls_mean: f64,
    /// Smallest / largest total polls across realizations.
    pub polls_min: u64,
    /// Largest total polls across realizations.
    pub polls_max: u64,
    /// Mean fidelity (by violations) of the adaptive policy.
    pub fidelity_mean: f64,
    /// Worst-case fidelity across realizations.
    pub fidelity_min: f64,
    /// In how many realizations the paper's comparative claim held
    /// (fig3: LIMD polls < baseline polls at the tightest Δ; fig5:
    /// triggered fidelity ≈ 1; fig7: at the paper's δ = \$0.6 the
    /// partitioned approach spends more polls than the virtual-object
    /// one — the §6.2.3 cost/fidelity trade-off).
    pub claim_held: usize,
}

/// One realization's contribution: total polls, mean fidelity, claim.
struct GridOutcome {
    polls: u64,
    fidelity: f64,
    claim: bool,
}

fn fig3_outcome(collection: u64) -> GridOutcome {
    let trace = FIG3_TRACE.generate_with_seed(FIG3_TRACE.seed() + collection * SEED_STRIDE);
    let rows = individual_temporal_sweep(&trace, &fig3_deltas(), &paper_fig3_config());
    GridOutcome {
        polls: rows.iter().map(|r| r.limd_polls).sum(),
        fidelity: rows.iter().map(|r| r.limd_fidelity_violations).sum::<f64>()
            / rows.len() as f64,
        claim: rows[0].limd_polls < rows[0].baseline_polls,
    }
}

fn fig5_outcome(collection: u64) -> GridOutcome {
    let (a, b) = FIG5_PAIR;
    let ta = a.generate_with_seed(a.seed() + collection * SEED_STRIDE);
    let tb = b.generate_with_seed(b.seed() + collection * SEED_STRIDE);
    let rows = mutual_temporal_sweep(&ta, &tb, fixed_delta(), &fig5_deltas(), &paper_fig3_config());
    GridOutcome {
        polls: rows.iter().map(|r| r.heuristic.polls).sum(),
        fidelity: rows.iter().map(|r| r.heuristic.fidelity).sum::<f64>() / rows.len() as f64,
        claim: rows.iter().all(|r| r.triggered.fidelity > 0.999),
    }
}

fn fig7_outcome(collection: u64) -> GridOutcome {
    let (a, b) = VALUE_PAIR;
    let ta = a.generate_with_seed(a.seed() + collection * SEED_STRIDE);
    let tb = b.generate_with_seed(b.seed() + collection * SEED_STRIDE);
    let deltas = fig7_deltas();
    let rows = mutual_value_sweep(&ta, &tb, &deltas, &paper_fig7_config());
    // The paper reports the trade-off at δ = $0.6 (neither approach
    // saturates there; at the grid's extremes both converge).
    let at_paper_delta = deltas
        .iter()
        .position(|d| *d == crate::fig8_delta())
        .expect("fig7 grid contains the paper's delta");
    GridOutcome {
        polls: rows.iter().map(|r| r.adaptive_polls).sum(),
        fidelity: rows.iter().map(|r| r.adaptive_fidelity).sum::<f64>() / rows.len() as f64,
        claim: rows[at_paper_delta].partitioned_polls > rows[at_paper_delta].adaptive_polls,
    }
}

/// δ for the multi-object group run (the Figure 5 grid's midpoint).
fn group_delta() -> Duration {
    Duration::from_mins(5)
}

fn limd_config(delta: Duration) -> LimdConfig {
    let config = paper_fig3_config();
    LimdConfig::builder(delta)
        .linear_increase(config.linear_increase)
        .epsilon(config.epsilon)
        .ttr_max(config.ttr_max.max(delta))
        .decrease(config.decrease)
        .build()
        .expect("paper parameters are valid")
}

/// Ablation A across collections; the claim is the §3.1 trade-off: the
/// conservative setting polls at least as much and is (about) at least
/// as faithful as the optimistic one.
fn abl_a_outcome(collection: u64) -> GridOutcome {
    let trace = FIG3_TRACE.generate_with_seed(FIG3_TRACE.seed() + collection * SEED_STRIDE);
    let rows = ablation::limd_aggressiveness(&trace, fixed_delta());
    let (optimistic, conservative) = (&rows[0], &rows[2]);
    GridOutcome {
        polls: rows.iter().map(|r| r.polls).sum(),
        fidelity: rows.iter().map(|r| r.fidelity_violations).sum::<f64>() / rows.len() as f64,
        claim: conservative.polls >= optimistic.polls
            && conservative.fidelity_violations >= optimistic.fidelity_violations - 0.05,
    }
}

/// Ablation B: the §5.1 modification-history extension never hurts
/// violation-detection fidelity.
fn abl_b_outcome(collection: u64) -> GridOutcome {
    let t = NamedTrace::Guardian;
    let trace = t.generate_with_seed(t.seed() + collection * SEED_STRIDE);
    let rows = ablation::violation_detection(&trace, fixed_delta());
    GridOutcome {
        polls: rows.iter().map(|r| r.polls).sum(),
        fidelity: rows.iter().map(|r| r.fidelity_violations).sum::<f64>() / rows.len() as f64,
        claim: rows[1].fidelity_violations >= rows[0].fidelity_violations - 1e-9,
    }
}

/// Ablation C: a stricter rate-comparability threshold triggers no more
/// polls than the loosest one.
fn abl_c_outcome(collection: u64) -> GridOutcome {
    let (a, b) = FIG5_PAIR;
    let ta = a.generate_with_seed(a.seed() + collection * SEED_STRIDE);
    let tb = b.generate_with_seed(b.seed() + collection * SEED_STRIDE);
    let rows = ablation::heuristic_threshold(&ta, &tb, fixed_delta(), group_delta());
    GridOutcome {
        polls: rows.iter().map(|r| r.polls).sum(),
        fidelity: rows.iter().map(|r| r.fidelity_violations).sum::<f64>() / rows.len() as f64,
        claim: rows.last().expect("non-empty grid").polls <= rows[0].polls,
    }
}

/// Ablation D: α = 0 (always respect the observed minimum TTR) polls at
/// least as much as α = 1.
fn abl_d_outcome(collection: u64) -> GridOutcome {
    let (a, b) = VALUE_PAIR;
    let ta = a.generate_with_seed(a.seed() + collection * SEED_STRIDE);
    let tb = b.generate_with_seed(b.seed() + collection * SEED_STRIDE);
    let rows = ablation::alpha_blend(&ta, &tb, fig8_delta());
    GridOutcome {
        polls: rows.iter().map(|r| r.polls).sum(),
        fidelity: rows.iter().map(|r| r.fidelity_violations).sum::<f64>() / rows.len() as f64,
        claim: rows[4].polls >= rows[0].polls,
    }
}

/// Mean pairwise Mt fidelity (by violations) over every pair in the
/// group — the n > 2 generalization of the Figure 5 metric.
fn group_fidelity(
    traces: &[UpdateTrace],
    ids: &[ObjectId],
    out: &TemporalSimOutput,
    until: mutcon_core::time::Timestamp,
) -> f64 {
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            let stats = metrics::mutual_temporal(
                &traces[i],
                &out.logs[&ids[i]],
                &traces[j],
                &out.logs[&ids[j]],
                group_delta(),
                until,
            );
            total += stats.fidelity_by_violations();
            pairs += 1;
        }
    }
    total / pairs.max(1) as f64
}

/// The multi-object (n = 4) Mt group: all temporal traces in one related
/// group under triggered polls versus the no-coordination baseline. The
/// claim is that triggered coordination fires and never degrades mean
/// pairwise fidelity.
fn multi_object_outcome(collection: u64) -> GridOutcome {
    let traces: Vec<UpdateTrace> = NamedTrace::TEMPORAL
        .iter()
        .map(|t| t.generate_with_seed(t.seed() + collection * SEED_STRIDE))
        .collect();
    let ids: Vec<ObjectId> = traces.iter().map(|t| ObjectId::new(t.name())).collect();
    let mut origin = OriginServer::new();
    for (id, trace) in ids.iter().zip(&traces) {
        origin.host(id.clone(), trace.clone());
    }
    let until = traces
        .iter()
        .map(UpdateTrace::end)
        .min()
        .expect("four traces");

    let run = |policy: MtPolicy| {
        run_temporal(
            &origin,
            &ids,
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(limd_config(fixed_delta())),
                mutual: Some(MutualSetup {
                    delta: group_delta(),
                    policy,
                }),
                until,
            },
        )
    };
    let baseline = run(MtPolicy::Baseline);
    let triggered = run(MtPolicy::TriggeredPolls);
    let baseline_fidelity = group_fidelity(&traces, &ids, &baseline, until);
    let triggered_fidelity = group_fidelity(&traces, &ids, &triggered, until);
    GridOutcome {
        polls: triggered.total_polls(),
        fidelity: triggered_fidelity,
        claim: triggered.total_triggered() > 0
            && triggered_fidelity >= baseline_fidelity - 1e-9,
    }
}

/// Runs the three figure grids, the four ablation grids and the
/// multi-object group across `repeats` seed-shifted realizations of
/// their traces, fanned out across cores, and aggregates per grid.
/// Deterministic for a given `repeats` at any thread count.
pub fn robustness_grid(repeats: u64) -> Vec<RobustnessRow> {
    let grids: [(&'static str, fn(u64) -> GridOutcome); 8] = [
        ("fig3", fig3_outcome),
        ("fig5", fig5_outcome),
        ("fig7", fig7_outcome),
        ("ablA", abl_a_outcome),
        ("ablB", abl_b_outcome),
        ("ablC", abl_c_outcome),
        ("ablD", abl_d_outcome),
        ("multi4", multi_object_outcome),
    ];

    // Fan out at (grid, collection) granularity: coarse enough that pool
    // overhead is negligible, fine enough to keep every core busy.
    let jobs: Vec<(usize, u64)> = (0..grids.len())
        .flat_map(|g| (0..repeats).map(move |c| (g, c)))
        .collect();
    let outcomes = run_all(jobs, |(g, c)| grids[g].1(c));

    grids
        .iter()
        .enumerate()
        .map(|(g, (name, _))| {
            let per_grid: Vec<&GridOutcome> = outcomes
                [g * repeats as usize..(g + 1) * repeats as usize]
                .iter()
                .collect();
            let n = per_grid.len().max(1);
            let polls_total: u64 = per_grid.iter().map(|o| o.polls).sum();
            RobustnessRow {
                grid: name,
                runs: per_grid.len(),
                polls_total,
                polls_mean: polls_total as f64 / n as f64,
                polls_min: per_grid.iter().map(|o| o.polls).min().unwrap_or(0),
                polls_max: per_grid.iter().map(|o| o.polls).max().unwrap_or(0),
                fidelity_mean: per_grid.iter().map(|o| o.fidelity).sum::<f64>() / n as f64,
                fidelity_min: per_grid
                    .iter()
                    .map(|o| o.fidelity)
                    .fold(f64::INFINITY, f64::min),
                claim_held: per_grid.iter().filter(|o| o.claim).count(),
            }
        })
        .collect()
}

/// Total polls simulated by [`robustness_grid`]'s rows (for the
/// benchmark report).
pub fn total_polls(rows: &[RobustnessRow]) -> u64 {
    rows.iter().map(|r| r.polls_total).sum()
}

/// Renders the aggregate as an aligned text table.
pub fn render(rows: &[RobustnessRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "Robustness — figure, ablation and multi-object grids across seed-shifted synthetic collections\n",
    );
    writeln!(
        out,
        "{:<6} {:>5} {:>12} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "grid", "runs", "polls(mean)", "min", "max", "fid(mean)", "fid(min)", "claim held"
    )
    .expect("writing to String cannot fail");
    for r in rows {
        writeln!(
            out,
            "{:<6} {:>5} {:>12.1} {:>9} {:>9} {:>9.3} {:>9.3} {:>8}/{}",
            r.grid,
            r.runs,
            r.polls_mean,
            r.polls_min,
            r.polls_max,
            r.fidelity_mean,
            r.fidelity_min,
            r.claim_held,
            r.runs
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_aggregates_are_sane() {
        let rows = robustness_grid(2);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.runs, 2);
            assert!(r.polls_min <= r.polls_max);
            assert!(r.polls_mean >= r.polls_min as f64);
            assert!(r.polls_mean <= r.polls_max as f64);
            assert!(r.polls_total >= r.polls_min * r.runs as u64);
            assert!(r.polls_total <= r.polls_max * r.runs as u64);
            assert!((0.0..=1.0).contains(&r.fidelity_min));
            assert!(r.fidelity_mean >= r.fidelity_min);
            assert!(r.claim_held <= r.runs);
        }
        let rendered = render(&rows);
        assert!(rendered.contains("fig3"));
        assert!(rendered.contains("fig7"));
        assert!(rendered.contains("ablA"));
        assert!(rendered.contains("multi4"));
        assert!(total_polls(&rows) > 0);
    }

    #[test]
    fn multi_object_group_coordinates_all_four_traces() {
        let outcome = multi_object_outcome(0);
        assert!(outcome.polls > 0);
        assert!((0.0..=1.0).contains(&outcome.fidelity));
        assert!(
            outcome.claim,
            "triggered coordination must fire and not degrade fidelity"
        );
    }

    #[test]
    fn comparative_claims_hold_across_collections() {
        // The reproduction target: the paper's qualitative claims are
        // not artifacts of one lucky seed.
        let rows = robustness_grid(3);
        for r in &rows {
            assert_eq!(
                r.claim_held, r.runs,
                "{} claim failed in {}/{} collections",
                r.grid,
                r.runs - r.claim_held,
                r.runs
            );
        }
    }
}
