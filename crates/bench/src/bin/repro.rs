//! `repro` — regenerate every table and figure of the ICDCS'01 paper.
//!
//! ```text
//! repro table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|ablation|all
//! ```
//!
//! Output is plain text, one section per experiment, matching the layout
//! recorded in `EXPERIMENTS.md`.

use std::time::Instant;

use mutcon_bench::{
    fig3_deltas, fig4_window, fig5_deltas, fig7_deltas, fig8_delta, fig8_window, fixed_delta,
    paper_fig3_config, paper_fig7_config, FIG3_TRACE, FIG5_PAIR, FIG6_PAIR, VALUE_PAIR,
};
use mutcon_core::time::Timestamp;
use mutcon_proxy::experiment::{
    heuristic_timeline, individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep,
    ttr_timeline, value_timeline,
};
use mutcon_proxy::report;
use mutcon_traces::stats::summarize;
use mutcon_traces::NamedTrace;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let started = Instant::now();
    let known: &[(&str, fn())] = &[
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("ablation", ablation),
    ];
    match arg.as_str() {
        "all" => {
            for (name, run) in known {
                println!("==== {name} ====");
                run();
                println!();
            }
        }
        other => match known.iter().find(|(name, _)| *name == other) {
            Some((_, run)) => run(),
            None => {
                eprintln!(
                    "unknown experiment {other:?}; expected one of: all, {}",
                    known
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
    }
    eprintln!("[repro] completed in {:.2?}", started.elapsed());
}

/// Table 1 is the taxonomy of consistency semantics — definitional, so it
/// is rendered from the library's own types.
fn table1() {
    use mutcon_core::semantics::Semantics;
    use mutcon_core::time::Duration;
    use mutcon_core::value::Value;
    println!("Table 1 — taxonomy of cache consistency semantics");
    println!("{:<10} {:<10} {:<12} example", "Semantics", "Domain", "Type");
    for s in [
        Semantics::DeltaT(Duration::from_mins(5)),
        Semantics::MutualT(Duration::from_mins(5)),
        Semantics::DeltaV(Value::new(2.5)),
        Semantics::MutualV(Value::new(2.5)),
    ] {
        let example = match s {
            Semantics::DeltaT(_) => "object a is always within 5 time units of its server copy",
            Semantics::MutualT(_) => "objects a and b are never out-of-sync by more than 5 units",
            Semantics::DeltaV(_) => "value of a is within 2.5 of its server copy",
            Semantics::MutualV(_) => "difference of a and b is within 2.5 of the server difference",
            _ => unreachable!(),
        };
        println!("{:<10} {:<10?} {:<12?} {example}", s.to_string(), s.domain(), s.scope());
    }
}

fn table2() {
    let summaries: Vec<_> = NamedTrace::TEMPORAL
        .iter()
        .map(|t| summarize(&t.generate()))
        .collect();
    print!("{}", report::table2(&summaries));
}

fn table3() {
    let summaries: Vec<_> = NamedTrace::VALUE
        .iter()
        .map(|t| summarize(&t.generate()))
        .collect();
    print!("{}", report::table3(&summaries));
}

fn fig3() {
    let trace = FIG3_TRACE.generate();
    let rows = individual_temporal_sweep(&trace, &fig3_deltas(), &paper_fig3_config());
    print!("{}", report::fig3(&trace, &rows));
}

fn fig4() {
    let trace = FIG3_TRACE.generate();
    let out = ttr_timeline(&trace, fixed_delta(), fig4_window(), &paper_fig3_config());
    print!("{}", report::fig4(&out));
}

fn fig5() {
    let (a, b) = FIG5_PAIR;
    let rows = mutual_temporal_sweep(
        &a.generate(),
        &b.generate(),
        fixed_delta(),
        &fig5_deltas(),
        &paper_fig3_config(),
    );
    print!("{}", report::fig5(&rows));
}

fn fig6() {
    let (a, b) = FIG6_PAIR;
    let out = heuristic_timeline(
        &a.generate(),
        &b.generate(),
        fixed_delta(),
        Duration::from_mins(5),
        fig4_window(),
        &paper_fig3_config(),
    );
    print!("{}", report::fig6(&out));
}
use mutcon_core::time::Duration;

fn fig7() {
    let (a, b) = VALUE_PAIR;
    let rows = mutual_value_sweep(
        &a.generate(),
        &b.generate(),
        &fig7_deltas(),
        &paper_fig7_config(),
    );
    print!("{}", report::fig7(&rows));
}

fn fig8() {
    let (a, b) = VALUE_PAIR;
    let (from, to) = fig8_window();
    let out = value_timeline(
        &a.generate(),
        &b.generate(),
        fig8_delta(),
        Timestamp::ZERO + from,
        Timestamp::ZERO + to,
        &paper_fig7_config(),
    );
    print!("{}", report::fig8(&out, 40));
}

/// Ablations of the design choices DESIGN.md §7 calls out.
fn ablation() {
    use mutcon_proxy::ablation as ab;
    let cnn = FIG3_TRACE.generate();
    print!(
        "{}",
        ab::render(
            "Ablation A — LIMD aggressiveness (CNN/FN, Δ = 10 min)",
            &ab::limd_aggressiveness(&cnn, fixed_delta()),
        )
    );
    println!();
    print!(
        "{}",
        ab::render(
            "Ablation B — violation detection (Guardian, Δ = 10 min)",
            &ab::violation_detection(&NamedTrace::Guardian.generate(), fixed_delta()),
        )
    );
    println!();
    let (a, b) = FIG5_PAIR;
    print!(
        "{}",
        ab::render(
            "Ablation C — heuristic rate threshold (CNN/FN + NYT/AP, δ = 5 min)",
            &ab::heuristic_threshold(
                &a.generate(),
                &b.generate(),
                fixed_delta(),
                Duration::from_mins(5),
            ),
        )
    );
    println!();
    let (ya, att) = VALUE_PAIR;
    print!(
        "{}",
        ab::render(
            "Ablation D — Equation 10 α-blend (Yahoo + AT&T, δ = $0.6)",
            &ab::alpha_blend(&ya.generate(), &att.generate(), fig8_delta()),
        )
    );
}
