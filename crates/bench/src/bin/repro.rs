//! `repro` — regenerate every table and figure of the ICDCS'01 paper.
//!
//! ```text
//! repro [--threads N | --serial] [--repeats R] [--compare-serial]
//!       [--conns C] [--rounds R] [--reactors N] [--reload-every N]
//!       [--wire-conns C] [--bench-json PATH]
//!       table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|ablation|bench|live-bench|live-wire|live-backend|live-overload|live-zipf|live-refresh|all
//! ```
//!
//! Output is plain text, one section per experiment, matching the layout
//! recorded in `EXPERIMENTS.md`. The parameter sweeps inside each
//! section fan their independent simulation runs out across cores
//! (`--threads`/`MUTCON_THREADS` control the worker count; results are
//! bit-for-bit identical at any thread count). `bench` is the robustness
//! grid — every figure grid re-run across `--repeats` seed-shifted trace
//! realizations — and doubles as the engine's scaling workload.
//!
//! Running `all` writes `BENCH_repro.json` — per-section wall-clock,
//! polls simulated and the thread count — so the perf trajectory is
//! tracked PR-over-PR. With `--compare-serial` (and more than one worker
//! available) every section is re-run with one thread afterwards; the
//! report then also records the serial wall-clock, the speedup, and
//! whether the parallel and serial outputs were byte-identical (they
//! must be).
//!
//! `live-bench` is the real-socket load generator
//! ([`mutcon_bench::livebench`]): `--conns` concurrently open client
//! connections through the live proxy's reactor threads for `--rounds`
//! request waves. `all` runs it once at the end (outside the serial
//! comparison — it measures wall-clock network behavior, not the
//! deterministic engine) and records it as the `live_bench` section of
//! the report. With `--reactors N`, `live-bench` instead runs a
//! reactor-count *sweep* (1, 2, … powers of two up to N), prints every
//! run, and records the sweep as the `live_bench_sweep` section of
//! `BENCH_repro.json` (splicing into an existing report, so the sweep
//! composes with a previous `all`). With `--reload-every N`, every N
//! request waves a `PUT /admin/rules` swaps the hot object's Δ mid-load
//! — the reconfigure scenario — and the run (throughput + p99 *across*
//! the swaps) is recorded as the `live_reload` section.
//!
//! `live-wire` is the wire-scale variant: `--wire-conns` (≥ 2000,
//! default 10000 — the engine raises `RLIMIT_NOFILE` to fit, and the
//! run clamps, loudly, to the fd headroom a hard cap leaves)
//! connections held open under the refresher's concurrent writes, with
//! the zero-copy send path's syscall/copy counters recorded alongside
//! p50/p99. `all` runs it after `live-bench` and records it as the
//! `live_wire` section; standalone runs splice the section into an
//! existing report.
//!
//! `live-backend` is the reactor-backend head-to-head: the same
//! wire-scale load once under coalesced-interest epoll and once under
//! raw io_uring (skipped, epoll leg still recorded, when the kernel
//! refuses rings), spliced into the report as the `live_backend`
//! section.
//!
//! `live-overload` is the admission-control wave bench
//! ([`mutcon_bench::livebench::overload`]): flash-crowd waves of
//! doubling size thrown at cold keys with the LIMD admission limiter
//! pinned, spliced into the report as the `live_overload` section. The
//! run *fails* unless p99 and the non-429 error rate plateau past
//! saturation — an unstable overload controller is a regression, not a
//! data point.
//!
//! `live-zipf` is the L1 cache-pressure bench
//! ([`mutcon_bench::livebench::zipf`]): a seeded Zipf(s = 1.0) catalog
//! big enough to overflow the L2 replayed over the identical request
//! sequence with the per-reactor L1 enabled and disabled, spliced into
//! the report as the `live_zipf` section. The run *fails* if any stale
//! serve is counted (by the engine's post-serve version audit or the
//! client-side stamp-monotonicity check), if the catalog never forced
//! an L2 eviction, or if the L1 leg served no L1 hits.
//!
//! `live-refresh` is the refresh-plane drift bench
//! ([`mutcon_bench::livebench::refresh`]): a 50 000-rule backlog, all
//! due at once, drained through a scripted-latency origin by one poll
//! worker and then by the pool, spliced into the report as the
//! `live_refresh` section. The run *fails* unless the concurrent leg
//! cuts p99 scheduled-vs-actual drift at least 5× at equal poll counts
//! (±5%) with zero stale serves observed by the hot-path reader.

use std::time::Instant;

use mutcon_bench::{
    fig3_deltas, fig4_window, fig5_deltas, fig7_deltas, fig8_delta, fig8_window, fixed_delta,
    paper_fig3_config, paper_fig7_config, FIG3_TRACE, FIG5_PAIR, FIG6_PAIR, VALUE_PAIR,
};
use mutcon_core::time::{Duration, Timestamp};
use mutcon_proxy::experiment::{
    heuristic_timeline, individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep,
    ttr_timeline, value_timeline,
};
use mutcon_proxy::report;
use mutcon_sim::parallel;
use mutcon_traces::stats::summarize;
use mutcon_traces::NamedTrace;

/// One experiment section: rendered text plus the number of simulated
/// origin polls it took to produce (the engine's unit of work).
struct Section {
    text: String,
    polls: u64,
}

/// Wall-clock and work measurements for one section, under the default
/// worker count and (optionally) the forced one-thread reference run.
struct Timing {
    name: &'static str,
    wall: std::time::Duration,
    serial_wall: Option<std::time::Duration>,
    polls: u64,
}

fn main() {
    let mut threads_override: Option<String> = None;
    let mut bench_json = String::from("BENCH_repro.json");
    let mut target: Option<String> = None;
    let mut repeats: u64 = 10;
    let mut compare_serial = false;
    let mut live = mutcon_bench::livebench::LiveBenchConfig::default();
    let mut reactors_sweep: Option<usize> = None;
    let mut wire_conns: usize = 10_000;
    /// Request waves for the wire-scale run: enough for a stable p99 at
    /// thousands of connections without dominating `repro all`.
    const WIRE_ROUNDS: usize = 3;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => match args.next() {
                Some(n) => threads_override = Some(n),
                None => usage_error("--threads needs a value"),
            },
            "--serial" => threads_override = Some("1".to_owned()),
            "--compare-serial" => compare_serial = true,
            "--repeats" => match args.next().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => repeats = r,
                _ => usage_error("--repeats needs a positive integer"),
            },
            "--conns" => match args.next().and_then(|r| r.parse().ok()) {
                Some(c) if c > 0 => live.conns = c,
                _ => usage_error("--conns needs a positive integer"),
            },
            "--rounds" => match args.next().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => live.rounds = r,
                _ => usage_error("--rounds needs a positive integer"),
            },
            "--reactors" => match args.next().and_then(|r| r.parse().ok()) {
                Some(r) if r > 0 => reactors_sweep = Some(r),
                _ => usage_error("--reactors needs a positive integer"),
            },
            "--reload-every" => match args.next().and_then(|r| r.parse().ok()) {
                Some(n) if n > 0 => live.reload_every = Some(n),
                _ => usage_error("--reload-every needs a positive integer"),
            },
            "--wire-conns" => match args.next().and_then(|r| r.parse().ok()) {
                Some(c) if c >= 2000 => wire_conns = c,
                _ => usage_error("--wire-conns needs an integer >= 2000 (that scale is the point)"),
            },
            "--bench-json" => match args.next() {
                Some(p) => bench_json = p,
                None => usage_error("--bench-json needs a path"),
            },
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_owned());
            }
            other => usage_error(&format!("unexpected argument {other:?}")),
        }
    }
    if let Some(n) = &threads_override {
        if n.parse::<usize>().map(|n| n > 0) != Ok(true) {
            usage_error("--threads needs a positive integer");
        }
        std::env::set_var(parallel::THREADS_ENV, n);
    }
    let target = target.unwrap_or_else(|| "all".to_owned());
    if let Some(n) = live.reload_every {
        if target != "live-bench" {
            // `all` embeds a live-bench run as the PR-over-PR `live_bench`
            // baseline; folding reload perturbation into that key would
            // silently skew the trajectory it exists to track.
            usage_error("--reload-every only applies to the live-bench target");
        }
        if n >= live.rounds {
            // Wave 0 never reloads, so n >= rounds means a run with zero
            // swaps would be recorded as the reconfigure scenario.
            usage_error("--reload-every must be smaller than --rounds (no wave would reload)");
        }
    }

    let bench = move || bench_section(repeats);
    let known: &[(&'static str, &dyn Fn() -> Section)] = &[
        ("table1", &table1),
        ("table2", &table2),
        ("table3", &table3),
        ("fig3", &fig3),
        ("fig4", &fig4),
        ("fig5", &fig5),
        ("fig6", &fig6),
        ("fig7", &fig7),
        ("fig8", &fig8),
        ("ablation", &ablation),
        ("bench", &bench),
    ];
    let started = Instant::now();
    match target.as_str() {
        "all" => {
            // Sections run one after another — each is internally
            // parallel — so the recorded per-section wall-clocks are not
            // distorted by sections competing for the machine.
            let mut timings: Vec<Timing> = Vec::with_capacity(known.len());
            let mut texts: Vec<String> = Vec::with_capacity(known.len());
            for (name, run) in known {
                let section_started = Instant::now();
                let section = run();
                let wall = section_started.elapsed();
                println!("==== {name} ====");
                print!("{}", section.text);
                println!();
                texts.push(section.text);
                timings.push(Timing {
                    name,
                    wall,
                    serial_wall: None,
                    polls: section.polls,
                });
            }
            let parallel_wall = started.elapsed();

            // Optional forced-serial reference pass: measures the
            // speedup and proves the outputs are byte-identical.
            let threads = parallel::default_threads();
            let mut serial_total = None;
            let mut outputs_identical = None;
            if compare_serial && threads > 1 {
                let saved = std::env::var(parallel::THREADS_ENV).ok();
                std::env::set_var(parallel::THREADS_ENV, "1");
                let serial_started = Instant::now();
                let mut identical = true;
                for (i, (name, run)) in known.iter().enumerate() {
                    let section_started = Instant::now();
                    let section = run();
                    let wall = section_started.elapsed();
                    timings[i].serial_wall = Some(wall);
                    if section.text != texts[i] {
                        identical = false;
                        eprintln!("[repro] WARNING: {name} output differs between parallel and serial runs");
                    }
                }
                serial_total = Some(serial_started.elapsed());
                outputs_identical = Some(identical);
                match saved {
                    Some(v) => std::env::set_var(parallel::THREADS_ENV, v),
                    None => std::env::remove_var(parallel::THREADS_ENV),
                }
            }

            // The live-proxy load run: real sockets, measured once,
            // outside the determinism comparison.
            let live_report = match mutcon_bench::livebench::run(live) {
                Ok(report) => {
                    println!("==== live-bench ====");
                    print!("{}", mutcon_bench::livebench::render(&report));
                    println!();
                    Some(report)
                }
                Err(e) => {
                    eprintln!("[repro] live-bench failed: {e}");
                    None
                }
            };

            // The wire-scale run: thousands of sockets, p99 under the
            // refresher's concurrent writes, zero-copy counters.
            let wire_report = match mutcon_bench::livebench::wire(wire_conns, WIRE_ROUNDS, None) {
                Ok(report) => {
                    println!("==== live-wire ====");
                    print!("{}", mutcon_bench::livebench::render_wire(&report));
                    println!();
                    Some(report)
                }
                Err(e) => {
                    eprintln!("[repro] live-wire failed: {e}");
                    None
                }
            };

            let report = bench_report(
                threads,
                repeats,
                parallel_wall,
                serial_total,
                outputs_identical,
                &timings,
                live_report.as_ref(),
                wire_report.as_ref(),
            );
            match std::fs::write(&bench_json, &report) {
                Ok(()) => eprintln!("[repro] wrote {bench_json}"),
                Err(e) => {
                    // The benchmark artifact is the point of `all` in CI;
                    // losing it silently would break the PR-over-PR
                    // perf trajectory.
                    eprintln!("[repro] cannot write {bench_json}: {e}");
                    std::process::exit(1);
                }
            }
            // A nondeterministic engine is a broken engine — but the
            // report (recording serial_output_identical: false) must
            // land on disk first so the failure is diagnosable.
            if outputs_identical == Some(false) {
                std::process::exit(1);
            }
        }
        "live-wire" => match mutcon_bench::livebench::wire(wire_conns, WIRE_ROUNDS, None) {
            Ok(report) => {
                print!("{}", mutcon_bench::livebench::render_wire(&report));
                let fragment = mutcon_bench::livebench::json_wire_fragment(&report);
                if let Err(e) = splice_section(&bench_json, "live_wire", &fragment) {
                    eprintln!("[repro] cannot record live_wire in {bench_json}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "[repro] recorded the {}-connection wire run in {bench_json}",
                    report.bench.conns
                );
            }
            Err(e) => {
                eprintln!("[repro] live-wire failed: {e}");
                std::process::exit(1);
            }
        },
        "live-backend" => {
            match mutcon_bench::livebench::backend_head_to_head(wire_conns, WIRE_ROUNDS, None) {
                Ok(h2h) => {
                    print!("{}", mutcon_bench::livebench::render_head_to_head(&h2h));
                    let fragment = mutcon_bench::livebench::json_head_to_head_fragment(&h2h);
                    if let Err(e) = splice_section(&bench_json, "live_backend", &fragment) {
                        eprintln!("[repro] cannot record live_backend in {bench_json}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!(
                        "[repro] recorded the backend head-to-head ({}) in {bench_json}",
                        if h2h.io_uring.is_some() {
                            "epoll vs io_uring"
                        } else {
                            "epoll only; kernel refuses rings"
                        }
                    );
                }
                Err(e) => {
                    eprintln!("[repro] live-backend failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "live-overload" => match mutcon_bench::livebench::overload(Default::default()) {
            Ok(report) => {
                print!("{}", mutcon_bench::livebench::render_overload(&report));
                let fragment = mutcon_bench::livebench::json_overload_fragment(&report);
                if let Err(e) = splice_section(&bench_json, "live_overload", &fragment) {
                    eprintln!("[repro] cannot record live_overload in {bench_json}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "[repro] recorded the {}-wave overload ramp in {bench_json}",
                    report.stages.len()
                );
                if !report.saturated {
                    // A ramp that never shed proved nothing about the
                    // limiter; record it, but do not call it a pass.
                    eprintln!("[repro] live-overload never crossed saturation");
                    std::process::exit(1);
                }
                if !report.stable {
                    eprintln!("[repro] live-overload ramp is UNSTABLE (p99 or error collapse)");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("[repro] live-overload failed: {e}");
                std::process::exit(1);
            }
        },
        "live-zipf" => match mutcon_bench::livebench::zipf(Default::default()) {
            Ok(report) => {
                print!("{}", mutcon_bench::livebench::render_zipf(&report));
                let fragment = mutcon_bench::livebench::json_zipf_fragment(&report);
                if let Err(e) = splice_section(&bench_json, "live_zipf", &fragment) {
                    eprintln!("[repro] cannot record live_zipf in {bench_json}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "[repro] recorded the {}-object Zipf pressure run in {bench_json}",
                    report.objects
                );
                if !report.coherent {
                    // A stale serve under Zipf pressure is a correctness
                    // failure of the L1 protocol, not a perf data point.
                    eprintln!("[repro] live-zipf counted a STALE SERVE");
                    std::process::exit(1);
                }
                if !report.pressured {
                    eprintln!("[repro] live-zipf never evicted from L2 (no real pressure)");
                    std::process::exit(1);
                }
                if !report.effective {
                    eprintln!("[repro] live-zipf L1 leg served no L1 hits");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("[repro] live-zipf failed: {e}");
                std::process::exit(1);
            }
        },
        "live-refresh" => match mutcon_bench::livebench::refresh(Default::default()) {
            Ok(report) => {
                print!("{}", mutcon_bench::livebench::render_refresh(&report));
                let fragment = mutcon_bench::livebench::json_refresh_fragment(&report);
                if let Err(e) = splice_section(&bench_json, "live_refresh", &fragment) {
                    eprintln!("[repro] cannot record live_refresh in {bench_json}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "[repro] recorded the {}-path refresh drain in {bench_json}",
                    report.paths
                );
                if !report.coherent {
                    // A stale serve traded for drift is a correctness
                    // failure of the worker pool, not a perf data point.
                    eprintln!("[repro] live-refresh counted a STALE SERVE");
                    std::process::exit(1);
                }
                if !report.polls_matched {
                    eprintln!(
                        "[repro] live-refresh legs diverged in poll count ({} vs {})",
                        report.serial.polls, report.concurrent.polls
                    );
                    std::process::exit(1);
                }
                if !report.scaled {
                    eprintln!(
                        "[repro] live-refresh pool cut p99 drift only {:.1}x (gate: 5x)",
                        report.p99_ratio
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("[repro] live-refresh failed: {e}");
                std::process::exit(1);
            }
        },
        "live-bench" if reactors_sweep.is_some() && live.reload_every.is_some() => {
            // A sweep point perturbed by mid-run reloads would record a
            // misleading scaling curve, and the reload section would be
            // ambiguous about which reactor count it measured.
            usage_error("--reload-every cannot be combined with --reactors (run them separately)");
        }
        "live-bench" => match reactors_sweep {
            // A reactor-count sweep, recorded into BENCH_repro.json.
            Some(max) => match mutcon_bench::livebench::sweep(live, max) {
                Ok(reports) => {
                    for report in &reports {
                        print!("{}", mutcon_bench::livebench::render(report));
                        println!();
                    }
                    let fragment = mutcon_bench::livebench::json_sweep_fragment(&reports);
                    if let Err(e) = splice_section(&bench_json, "live_bench_sweep", &fragment) {
                        eprintln!("[repro] cannot record the sweep in {bench_json}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("[repro] recorded {}-point reactor sweep in {bench_json}", reports.len());
                }
                Err(e) => {
                    eprintln!("[repro] live-bench sweep failed: {e}");
                    std::process::exit(1);
                }
            },
            None => match mutcon_bench::livebench::run(live) {
                Ok(report) => {
                    print!("{}", mutcon_bench::livebench::render(&report));
                    if live.reload_every.is_some() {
                        // The reconfigure scenario: record throughput +
                        // p99 across the mid-load rule swaps.
                        let fragment = mutcon_bench::livebench::json_fragment(&report);
                        if let Err(e) = splice_section(&bench_json, "live_reload", &fragment) {
                            eprintln!("[repro] cannot record live_reload in {bench_json}: {e}");
                            std::process::exit(1);
                        }
                        eprintln!(
                            "[repro] recorded the {}-reload reconfigure run in {bench_json}",
                            report.reloads
                        );
                    }
                }
                Err(e) => {
                    eprintln!("[repro] live-bench failed: {e}");
                    std::process::exit(1);
                }
            },
        },
        other => match known.iter().find(|(name, _)| *name == other) {
            Some((_, run)) => print!("{}", run().text),
            None => {
                eprintln!(
                    "unknown experiment {other:?}; expected one of: all, {}",
                    known
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
    }
    eprintln!(
        "[repro] completed in {:.2?} with {} worker thread(s)",
        started.elapsed(),
        parallel::default_threads()
    );
}

fn usage_error(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!(
        "usage: repro [--threads N | --serial] [--repeats R] [--compare-serial] [--conns C] [--rounds R] [--reactors N] [--reload-every N] [--wire-conns C] [--bench-json PATH] <experiment|live-bench|live-wire|live-backend|live-overload|live-zipf|live-refresh|all>"
    );
    std::process::exit(2);
}

/// Records a standalone section in the benchmark report: replaces the
/// `"<key>"` line of an existing `BENCH_repro.json` (written by `repro
/// all`), or writes a minimal report holding just the section when no
/// file exists yet. Line-based splicing is safe because the report
/// format is this binary's own, one key per line. Used by the reactor
/// sweep (`live_bench_sweep`) and the reconfigure run (`live_reload`).
fn splice_section(path: &str, name: &str, fragment: &str) -> std::io::Result<()> {
    let key = format!("\"{name}\":");
    match std::fs::read_to_string(path) {
        Ok(content) => {
            let mut out = String::with_capacity(content.len() + fragment.len());
            let mut replaced = false;
            for line in content.lines() {
                if line.trim_start().starts_with(&key) {
                    let comma = if line.trim_end().ends_with(',') { "," } else { "" };
                    out.push_str(&format!("  {key} {fragment}{comma}\n"));
                    replaced = true;
                } else {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            if !replaced {
                // A report from before this key existed: append it
                // inside the object.
                out = format!(
                    "{},\n  {key} {fragment}\n}}\n",
                    out.trim_end().trim_end_matches('}').trim_end(),
                );
            }
            std::fs::write(path, out)
        }
        Err(_) => std::fs::write(path, format!("{{\n  {key} {fragment}\n}}\n")),
    }
}

/// Renders the machine-readable benchmark report by hand — the format is
/// three levels deep, a serializer would be overkill.
fn bench_report(
    threads: usize,
    repeats: u64,
    parallel_wall: std::time::Duration,
    serial_wall: Option<std::time::Duration>,
    outputs_identical: Option<bool>,
    sections: &[Timing],
    live: Option<&mutcon_bench::livebench::LiveBenchReport>,
    wire: Option<&mutcon_bench::livebench::LiveWireReport>,
) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let total_polls: u64 = sections.iter().map(|t| t.polls).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"bench_repeats\": {repeats},\n"));
    out.push_str(&format!("  \"total_polls\": {total_polls},\n"));
    out.push_str(&format!(
        "  \"parallel_wall_ms\": {:.3},\n",
        ms(parallel_wall)
    ));
    match serial_wall {
        Some(serial) => {
            out.push_str(&format!("  \"serial_wall_ms\": {:.3},\n", ms(serial)));
            out.push_str(&format!(
                "  \"speedup\": {:.3},\n",
                ms(serial) / ms(parallel_wall).max(1e-9)
            ));
            out.push_str(&format!(
                "  \"serial_output_identical\": {},\n",
                outputs_identical.unwrap_or(false)
            ));
        }
        None => {
            out.push_str("  \"serial_wall_ms\": null,\n");
            out.push_str("  \"speedup\": null,\n");
            out.push_str("  \"serial_output_identical\": null,\n");
        }
    }
    match live {
        Some(report) => out.push_str(&format!(
            "  \"live_bench\": {},\n",
            mutcon_bench::livebench::json_fragment(report)
        )),
        None => out.push_str("  \"live_bench\": null,\n"),
    }
    // Wire-path run (`repro all` includes one; `repro live-wire` splices
    // its section over this line).
    match wire {
        Some(report) => out.push_str(&format!(
            "  \"live_wire\": {},\n",
            mutcon_bench::livebench::json_wire_fragment(report)
        )),
        None => out.push_str("  \"live_wire\": null,\n"),
    }
    // Placeholders for `repro live-bench --reactors N` (reactor-count
    // sweep) and `repro live-bench --reload-every N` (reconfigure run),
    // which splice their sections over these lines (see
    // `splice_section`).
    out.push_str("  \"live_bench_sweep\": null,\n");
    out.push_str("  \"live_reload\": null,\n");
    out.push_str("  \"live_backend\": null,\n");
    out.push_str("  \"live_overload\": null,\n");
    out.push_str("  \"live_zipf\": null,\n");
    out.push_str("  \"live_refresh\": null,\n");
    out.push_str("  \"sections\": [\n");
    for (i, t) in sections.iter().enumerate() {
        let serial = match t.serial_wall {
            Some(w) => format!("{:.3}", ms(w)),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"serial_wall_ms\": {serial}, \"polls\": {}}}{}\n",
            t.name,
            ms(t.wall),
            t.polls,
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The robustness grid (see [`mutcon_bench::robustness`]): the engine's
/// scaling workload.
fn bench_section(repeats: u64) -> Section {
    let rows = mutcon_bench::robustness::robustness_grid(repeats);
    let polls = mutcon_bench::robustness::total_polls(&rows);
    Section {
        text: mutcon_bench::robustness::render(&rows),
        polls,
    }
}

/// Table 1 is the taxonomy of consistency semantics — definitional, so it
/// is rendered from the library's own types.
fn table1() -> Section {
    use mutcon_core::semantics::Semantics;
    use mutcon_core::value::Value;
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "Table 1 — taxonomy of cache consistency semantics");
    let _ = writeln!(text, "{:<10} {:<10} {:<12} example", "Semantics", "Domain", "Type");
    for s in [
        Semantics::DeltaT(Duration::from_mins(5)),
        Semantics::MutualT(Duration::from_mins(5)),
        Semantics::DeltaV(Value::new(2.5)),
        Semantics::MutualV(Value::new(2.5)),
    ] {
        let example = match s {
            Semantics::DeltaT(_) => "object a is always within 5 time units of its server copy",
            Semantics::MutualT(_) => "objects a and b are never out-of-sync by more than 5 units",
            Semantics::DeltaV(_) => "value of a is within 2.5 of its server copy",
            Semantics::MutualV(_) => "difference of a and b is within 2.5 of the server difference",
            _ => unreachable!(),
        };
        let _ = writeln!(
            text,
            "{:<10} {:<10?} {:<12?} {example}",
            s.to_string(),
            s.domain(),
            s.scope()
        );
    }
    Section { text, polls: 0 }
}

fn table2() -> Section {
    // Generating the four calibrated news traces is the cost here; fan
    // the generators out.
    let summaries = parallel::run_all(NamedTrace::TEMPORAL.to_vec(), |t| summarize(&t.generate()));
    Section {
        text: report::table2(&summaries),
        polls: 0,
    }
}

fn table3() -> Section {
    let summaries = parallel::run_all(NamedTrace::VALUE.to_vec(), |t| summarize(&t.generate()));
    Section {
        text: report::table3(&summaries),
        polls: 0,
    }
}

fn fig3() -> Section {
    let trace = FIG3_TRACE.generate();
    let rows = individual_temporal_sweep(&trace, &fig3_deltas(), &paper_fig3_config());
    let polls = rows.iter().map(|r| r.baseline_polls + r.limd_polls).sum();
    Section {
        text: report::fig3(&trace, &rows),
        polls,
    }
}

fn fig4() -> Section {
    let trace = FIG3_TRACE.generate();
    let out = ttr_timeline(&trace, fixed_delta(), fig4_window(), &paper_fig3_config());
    let polls = out.ttr.len() as u64;
    Section {
        text: report::fig4(&out),
        polls,
    }
}

fn fig5() -> Section {
    let (a, b) = FIG5_PAIR;
    let rows = mutual_temporal_sweep(
        &a.generate(),
        &b.generate(),
        fixed_delta(),
        &fig5_deltas(),
        &paper_fig3_config(),
    );
    let polls = rows
        .iter()
        .map(|r| r.baseline.polls + r.triggered.polls + r.heuristic.polls)
        .sum();
    Section {
        text: report::fig5(&rows),
        polls,
    }
}

fn fig6() -> Section {
    let (a, b) = FIG6_PAIR;
    let out = heuristic_timeline(
        &a.generate(),
        &b.generate(),
        fixed_delta(),
        Duration::from_mins(5),
        fig4_window(),
        &paper_fig3_config(),
    );
    let polls = out.extra_polls.iter().map(|w| w.count as u64).sum();
    Section {
        text: report::fig6(&out),
        polls,
    }
}

fn fig7() -> Section {
    let (a, b) = VALUE_PAIR;
    let rows = mutual_value_sweep(
        &a.generate(),
        &b.generate(),
        &fig7_deltas(),
        &paper_fig7_config(),
    );
    let polls = rows
        .iter()
        .map(|r| r.adaptive_polls + r.partitioned_polls)
        .sum();
    Section {
        text: report::fig7(&rows),
        polls,
    }
}

fn fig8() -> Section {
    let (a, b) = VALUE_PAIR;
    let (from, to) = fig8_window();
    let out = value_timeline(
        &a.generate(),
        &b.generate(),
        fig8_delta(),
        Timestamp::ZERO + from,
        Timestamp::ZERO + to,
        &paper_fig7_config(),
    );
    let polls = (out.adaptive.len() + out.partitioned.len()) as u64;
    Section {
        text: report::fig8(&out, 40),
        polls,
    }
}

/// Ablations of the design choices DESIGN.md §7 calls out.
fn ablation() -> Section {
    use mutcon_proxy::ablation as ab;
    use std::fmt::Write as _;
    let mut text = String::new();
    let mut polls = 0u64;
    let push = |title: &str, rows: Vec<ab::AblationRow>, text: &mut String, polls: &mut u64| {
        *polls += rows.iter().map(|r| r.polls).sum::<u64>();
        let _ = write!(text, "{}", ab::render(title, &rows));
    };
    let cnn = FIG3_TRACE.generate();
    push(
        "Ablation A — LIMD aggressiveness (CNN/FN, Δ = 10 min)",
        ab::limd_aggressiveness(&cnn, fixed_delta()),
        &mut text,
        &mut polls,
    );
    let _ = writeln!(text);
    push(
        "Ablation B — violation detection (Guardian, Δ = 10 min)",
        ab::violation_detection(&NamedTrace::Guardian.generate(), fixed_delta()),
        &mut text,
        &mut polls,
    );
    let _ = writeln!(text);
    let (a, b) = FIG5_PAIR;
    push(
        "Ablation C — heuristic rate threshold (CNN/FN + NYT/AP, δ = 5 min)",
        ab::heuristic_threshold(
            &a.generate(),
            &b.generate(),
            fixed_delta(),
            Duration::from_mins(5),
        ),
        &mut text,
        &mut polls,
    );
    let _ = writeln!(text);
    let (ya, att) = VALUE_PAIR;
    push(
        "Ablation D — Equation 10 α-blend (Yahoo + AT&T, δ = $0.6)",
        ab::alpha_blend(&ya.generate(), &att.generate(), fig8_delta()),
        &mut text,
        &mut polls,
    );
    Section { text, polls }
}
