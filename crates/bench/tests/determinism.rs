//! The parallel sweep engine must be bit-for-bit deterministic: fanning
//! independent runs out across worker threads may never change a single
//! figure row or report byte relative to the forced single-thread path.
//!
//! Everything lives in ONE test function because it flips the
//! `MUTCON_THREADS` environment variable, which is process-global.

use mutcon_bench::{
    fig3_deltas, fig7_deltas, fixed_delta, paper_fig3_config, paper_fig7_config, robustness,
    FIG3_TRACE, FIG5_PAIR, VALUE_PAIR,
};
use mutcon_core::time::Duration;
use mutcon_proxy::experiment::{
    individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep, Fig3Row, Fig5Row,
    Fig7Row,
};
use mutcon_proxy::{ablation, report};
use mutcon_sim::parallel::THREADS_ENV;

/// Everything the comparison covers, captured under one thread setting.
#[derive(Debug, PartialEq)]
struct Snapshot {
    fig3_rows: Vec<Fig3Row>,
    fig3_report: String,
    fig5_rows: Vec<Fig5Row>,
    fig7_rows: Vec<Fig7Row>,
    fig7_report: String,
    ablation_a: String,
    ablation_c: String,
    robustness: Vec<robustness::RobustnessRow>,
}

fn snapshot() -> Snapshot {
    let cnn = FIG3_TRACE.generate();
    let fig3_rows = individual_temporal_sweep(&cnn, &fig3_deltas(), &paper_fig3_config());
    let fig3_report = report::fig3(&cnn, &fig3_rows);

    let (a, b) = FIG5_PAIR;
    let fig5_rows = mutual_temporal_sweep(
        &a.generate(),
        &b.generate(),
        fixed_delta(),
        &[Duration::from_mins(1), Duration::from_mins(10)],
        &paper_fig3_config(),
    );

    let (ya, att) = VALUE_PAIR;
    let fig7_rows = mutual_value_sweep(
        &ya.generate(),
        &att.generate(),
        &fig7_deltas(),
        &paper_fig7_config(),
    );
    let fig7_report = report::fig7(&fig7_rows);

    let ablation_a = ablation::render(
        "A",
        &ablation::limd_aggressiveness(&cnn, fixed_delta()),
    );
    let ablation_c = ablation::render(
        "C",
        &ablation::heuristic_threshold(
            &a.generate(),
            &b.generate(),
            fixed_delta(),
            Duration::from_mins(5),
        ),
    );

    Snapshot {
        fig3_rows,
        fig3_report,
        fig5_rows,
        fig7_rows,
        fig7_report,
        ablation_a,
        ablation_c,
        robustness: robustness::robustness_grid(3),
    }
}

#[test]
fn parallel_sweeps_match_forced_serial_exactly() {
    let saved = std::env::var(THREADS_ENV).ok();

    std::env::set_var(THREADS_ENV, "1");
    let serial = snapshot();

    // More workers than this container has cores, so jobs genuinely
    // interleave and finish out of order.
    std::env::set_var(THREADS_ENV, "8");
    let parallel = snapshot();
    // And once more at an awkward worker count.
    std::env::set_var(THREADS_ENV, "3");
    let parallel_odd = snapshot();

    match saved {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }

    // Row-level equality (covers every number in the figures)…
    assert_eq!(serial.fig3_rows, parallel.fig3_rows);
    assert_eq!(serial.fig5_rows, parallel.fig5_rows);
    assert_eq!(serial.fig7_rows, parallel.fig7_rows);
    assert_eq!(serial.robustness, parallel.robustness);
    // …and byte-identical rendered reports.
    assert_eq!(serial.fig3_report, parallel.fig3_report);
    assert_eq!(serial.fig7_report, parallel.fig7_report);
    assert_eq!(serial.ablation_a, parallel.ablation_a);
    assert_eq!(serial.ablation_c, parallel.ablation_c);
    // The whole snapshot, against both worker counts.
    assert_eq!(serial, parallel);
    assert_eq!(serial, parallel_odd);
}
