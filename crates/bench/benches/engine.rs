//! Micro-benchmarks of the simulation substrate: event-queue throughput
//! and the seeded distributions behind the workload generators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mutcon_core::time::{Duration, Timestamp};
use mutcon_sim::queue::EventQueue;
use mutcon_sim::rng::SimRng;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                // Scatter times to exercise heap reordering.
                q.schedule_at(Timestamp::from_millis((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        });
    });
    c.bench_function("queue/interleaved_reschedule", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            q.schedule_at(Timestamp::ZERO, 0);
            let mut n = 0u32;
            // Pop-then-schedule pattern: the proxy driver's steady state.
            while n < 1_000 {
                let (_, _e) = q.pop().unwrap();
                n += 1;
                q.schedule_after(Duration::from_millis(10), n);
            }
            // Drain the last event.
            black_box(q.pop())
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| black_box(rng.exponential(26.0)));
    });
    c.bench_function("rng/normal", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| black_box(rng.normal(0.0, 1.0)));
    });
    c.bench_function("rng/poisson_small_lambda", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| black_box(rng.poisson(3.5)));
    });
}

fn bench_generators(c: &mut Criterion) {
    use mutcon_traces::generator::{NewsTraceBuilder, StockTraceBuilder};
    c.bench_function("generator/news_113_updates", |b| {
        b.iter(|| {
            black_box(
                NewsTraceBuilder::new("bench", Duration::from_hours(49), 113)
                    .seed(1)
                    .build()
                    .unwrap(),
            )
        });
    });
    c.bench_function("generator/stock_653_ticks", |b| {
        b.iter(|| {
            black_box(
                StockTraceBuilder::new("bench", Duration::from_hours(3), 653, 35.8, 36.5)
                    .seed(1)
                    .build()
                    .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_generators);
criterion_main!(benches);
