//! Micro-benchmarks of the HTTP substrate: message parse/serialize and
//! HTTP-date handling — the per-request overhead of the live proxy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mutcon_core::time::Timestamp;
use mutcon_http::date::{format_http_date, parse_http_date};
use mutcon_http::message::{Request, Response};
use mutcon_http::parse::{parse_request, parse_response};

fn bench_messages(c: &mut Criterion) {
    let request_wire = Request::get("/news/story.html")
        .host("origin.example:8080")
        .if_modified_since(Timestamp::from_secs(784_111_777))
        .header("x-last-modified-ms", "784111777123")
        .build()
        .to_bytes();
    c.bench_function("http/parse_request", |b| {
        b.iter(|| black_box(parse_request(&request_wire).unwrap().unwrap()));
    });

    let response_wire = Response::ok()
        .last_modified(Timestamp::from_secs(784_111_777))
        .header("x-object-version", "42")
        .header("x-modification-history", "1000, 2000, 3000, 4000")
        .body(vec![0u8; 512])
        .build()
        .to_bytes();
    c.bench_function("http/parse_response_512b", |b| {
        b.iter(|| black_box(parse_response(&response_wire).unwrap().unwrap()));
    });

    let response = Response::ok()
        .last_modified(Timestamp::from_secs(784_111_777))
        .body(vec![0u8; 512])
        .build();
    c.bench_function("http/serialize_response_512b", |b| {
        b.iter(|| black_box(response.to_bytes()));
    });
}

fn bench_dates(c: &mut Criterion) {
    c.bench_function("http/format_date", |b| {
        b.iter(|| black_box(format_http_date(Timestamp::from_secs(784_111_777))));
    });
    c.bench_function("http/parse_date", |b| {
        b.iter(|| black_box(parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT").unwrap()));
    });
}

criterion_group!(benches, bench_messages, bench_dates);
criterion_main!(benches);
