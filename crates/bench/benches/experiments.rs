//! One Criterion benchmark per paper experiment, on scaled-down traces so
//! `cargo bench` exercises every figure's full code path in seconds.
//! The full-size runs (identical code, catalog traces, paper parameter
//! grids) live in the `repro` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_proxy::experiment::{
    heuristic_timeline, individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep,
    ttr_timeline, value_timeline, Fig3Config, Fig7Config,
};
use mutcon_traces::generator::{NewsTraceBuilder, StockTraceBuilder};
use mutcon_traces::stats::summarize;
use mutcon_traces::UpdateTrace;

fn news(name: &str, updates: usize, seed: u64) -> UpdateTrace {
    NewsTraceBuilder::new(name, Duration::from_hours(12), updates)
        .seed(seed)
        .build()
        .expect("bench trace parameters are valid")
}

fn stock(name: &str, updates: usize, lo: f64, hi: f64, seed: u64) -> UpdateTrace {
    StockTraceBuilder::new(name, Duration::from_mins(45), updates, lo, hi)
        .seed(seed)
        .build()
        .expect("bench trace parameters are valid")
}

fn bench_tables(c: &mut Criterion) {
    let trace = news("t2", 60, 1);
    c.bench_function("exp/table2_summaries", |b| {
        b.iter(|| black_box(summarize(&trace)));
    });
    let stock_trace = stock("t3", 150, 35.8, 36.5, 2);
    c.bench_function("exp/table3_summaries", |b| {
        b.iter(|| black_box(summarize(&stock_trace)));
    });
}

fn bench_fig3(c: &mut Criterion) {
    let trace = news("fig3", 60, 3);
    let deltas = [Duration::from_mins(5), Duration::from_mins(30)];
    c.bench_function("exp/fig3_sweep", |b| {
        b.iter(|| {
            black_box(individual_temporal_sweep(
                &trace,
                &deltas,
                &Fig3Config::default(),
            ))
        });
    });
}

fn bench_fig4(c: &mut Criterion) {
    let trace = news("fig4", 60, 4);
    c.bench_function("exp/fig4_timeline", |b| {
        b.iter(|| {
            black_box(ttr_timeline(
                &trace,
                Duration::from_mins(10),
                Duration::from_hours(2),
                &Fig3Config::default(),
            ))
        });
    });
}

fn bench_fig5(c: &mut Criterion) {
    let a = news("fig5a", 60, 5);
    let b_trace = news("fig5b", 40, 6);
    let deltas = [Duration::from_mins(5)];
    c.bench_function("exp/fig5_sweep", |b| {
        b.iter(|| {
            black_box(mutual_temporal_sweep(
                &a,
                &b_trace,
                Duration::from_mins(10),
                &deltas,
                &Fig3Config::default(),
            ))
        });
    });
}

fn bench_fig6(c: &mut Criterion) {
    let a = news("fig6a", 80, 7);
    let b_trace = news("fig6b", 30, 8);
    c.bench_function("exp/fig6_timeline", |b| {
        b.iter(|| {
            black_box(heuristic_timeline(
                &a,
                &b_trace,
                Duration::from_mins(10),
                Duration::from_mins(5),
                Duration::from_hours(2),
                &Fig3Config::default(),
            ))
        });
    });
}

fn bench_fig7(c: &mut Criterion) {
    let a = stock("fig7a", 300, 160.2, 171.2, 9);
    let b_trace = stock("fig7b", 100, 35.8, 36.5, 10);
    let deltas = [Value::new(0.6), Value::new(2.0)];
    c.bench_function("exp/fig7_sweep", |b| {
        b.iter(|| {
            black_box(mutual_value_sweep(
                &a,
                &b_trace,
                &deltas,
                &Fig7Config::default(),
            ))
        });
    });
}

fn bench_fig8(c: &mut Criterion) {
    let a = stock("fig8a", 300, 160.2, 171.2, 11);
    let b_trace = stock("fig8b", 100, 35.8, 36.5, 12);
    c.bench_function("exp/fig8_timeline", |b| {
        b.iter(|| {
            black_box(value_timeline(
                &a,
                &b_trace,
                Value::new(0.6),
                Timestamp::from_secs(300),
                Timestamp::from_secs(1_500),
                &Fig7Config::default(),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8
);
criterion_main!(benches);
