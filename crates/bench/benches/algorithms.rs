//! Micro-benchmarks of the core adaptive algorithms: the per-poll cost of
//! LIMD, the value-domain adaptive TTR, and the mutual coordinators.
//! These are the operations a proxy performs on every refresh, so their
//! cost bounds proxy throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mutcon_core::adaptive_ttr::AdaptiveTtrConfig;
use mutcon_core::limd::{Limd, LimdConfig, PollResult};
use mutcon_core::mutual::temporal::{MtCoordinator, MtPolicy};
use mutcon_core::mutual::value::{PairMember, PartitionedConfig, VirtualObjectConfig};
use mutcon_core::functions::ValueFunction;
use mutcon_core::object::ObjectId;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;

fn bench_limd(c: &mut Criterion) {
    let config = LimdConfig::builder(Duration::from_mins(10)).build().unwrap();
    c.bench_function("limd/on_poll_unchanged", |b| {
        let mut limd = Limd::new(config);
        let mut now = Timestamp::ZERO;
        b.iter(|| {
            now += limd.current_ttr();
            black_box(limd.on_poll(now, &PollResult::NotModified))
        });
    });
    c.bench_function("limd/on_poll_modified", |b| {
        let mut limd = Limd::new(config);
        let mut now = Timestamp::ZERO;
        b.iter(|| {
            now += limd.current_ttr();
            let result = PollResult::modified(now - Duration::from_mins(3));
            black_box(limd.on_poll(now, &result))
        });
    });
}

fn bench_adaptive_ttr(c: &mut Criterion) {
    let config = AdaptiveTtrConfig::builder(Value::new(0.5)).build().unwrap();
    c.bench_function("adaptive_ttr/on_poll", |b| {
        let mut state = config.into_state();
        let mut now = Timestamp::ZERO;
        let mut v = 100.0;
        b.iter(|| {
            now += Duration::from_secs(10);
            v += 0.01;
            black_box(state.on_poll(now, Value::new(v)))
        });
    });
}

fn bench_mt_coordinator(c: &mut Criterion) {
    // A 16-object group: each poll consults every other member.
    let members: Vec<ObjectId> = (0..16).map(|i| ObjectId::new(format!("obj/{i}"))).collect();
    c.bench_function("mt_coordinator/on_poll_modified_16", |b| {
        let mut mt = MtCoordinator::new(
            Duration::from_mins(5),
            MtPolicy::TriggeredPolls,
            members.clone(),
        );
        let mut now = Timestamp::ZERO;
        b.iter(|| {
            now += Duration::from_mins(1);
            black_box(mt.on_poll(&members[0], now, &PollResult::modified(now)))
        });
    });
}

fn bench_mv_policies(c: &mut Criterion) {
    c.bench_function("mv_virtual/on_poll", |b| {
        let mut policy = VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(0.6))
            .build()
            .unwrap()
            .into_policy();
        let mut now = Timestamp::ZERO;
        let mut v = 160.0;
        b.iter(|| {
            now += Duration::from_secs(10);
            v += 0.01;
            black_box(policy.on_poll(now, Value::new(v), Value::new(36.0)))
        });
    });
    c.bench_function("mv_partitioned/on_poll", |b| {
        let mut policy = PartitionedConfig::builder(ValueFunction::Difference, Value::new(0.6))
            .build()
            .unwrap()
            .into_policy();
        let mut now = Timestamp::ZERO;
        let mut v = 160.0;
        b.iter(|| {
            now += Duration::from_secs(10);
            v += 0.01;
            black_box(policy.on_poll(PairMember::A, now, Value::new(v)))
        });
    });
}

criterion_group!(
    benches,
    bench_limd,
    bench_adaptive_ttr,
    bench_mt_coordinator,
    bench_mv_policies
);
criterion_main!(benches);
