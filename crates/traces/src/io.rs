//! Trace persistence: from-scratch TSV and JSON codecs.
//!
//! The TSV format is the primary, dependency-light interchange format
//! (what the paper's `wget`-style collection scripts would have written):
//!
//! ```text
//! # mutcon-trace v1
//! # name: AT&T
//! # start_ms: 0
//! # end_ms: 10800000
//! 0\t36.1500
//! 9858\t36.1621
//! ```
//!
//! One line per event: milliseconds-since-start, then the value or `-`
//! for temporal (value-less) events. JSON (`to_json`/`from_json`) carries
//! the same information for tooling that prefers it (encoded with the in-tree [`crate::json`]
//! module, so no serialization crate is needed).

use std::fmt;

use mutcon_core::time::Timestamp;
use mutcon_core::value::Value;

use crate::model::{TraceError, UpdateEvent, UpdateTrace};

/// Error returned when trace text cannot be decoded.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceIoError {
    /// The `# mutcon-trace v1` magic line is missing or wrong.
    BadMagic,
    /// A required header (`name`, `start_ms`, `end_ms`) is missing.
    MissingHeader(&'static str),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// The decoded events violate trace invariants.
    Invalid(TraceError),
    /// JSON (de)serialization failed.
    Json(crate::json::JsonError),
    /// The JSON parsed but does not describe a trace.
    Schema(&'static str),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::BadMagic => f.write_str("missing `# mutcon-trace v1` magic line"),
            TraceIoError::MissingHeader(h) => write!(f, "missing header `{h}`"),
            TraceIoError::BadLine { line } => write!(f, "cannot parse line {line}"),
            TraceIoError::Invalid(e) => write!(f, "invalid trace: {e}"),
            TraceIoError::Json(e) => write!(f, "json error: {e}"),
            TraceIoError::Schema(what) => write!(f, "json does not describe a trace: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Invalid(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for TraceIoError {
    fn from(e: TraceError) -> Self {
        TraceIoError::Invalid(e)
    }
}

impl From<crate::json::JsonError> for TraceIoError {
    fn from(e: crate::json::JsonError) -> Self {
        TraceIoError::Json(e)
    }
}

/// Encodes a trace as TSV text.
pub fn to_tsv(trace: &UpdateTrace) -> String {
    let mut out = String::with_capacity(64 + trace.events().len() * 16);
    out.push_str("# mutcon-trace v1\n");
    out.push_str(&format!("# name: {}\n", trace.name()));
    out.push_str(&format!("# start_ms: {}\n", trace.start().as_millis()));
    out.push_str(&format!("# end_ms: {}\n", trace.end().as_millis()));
    for e in trace.events() {
        let rel = e.at.as_millis() - trace.start().as_millis();
        match e.value {
            // f64's Display emits the shortest string that parses back to
            // the same bits, so valued traces round-trip exactly.
            Some(v) => out.push_str(&format!("{rel}\t{}\n", v.as_f64())),
            None => out.push_str(&format!("{rel}\t-\n")),
        }
    }
    out
}

/// Decodes a trace from TSV text.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed text or invariant violations.
pub fn from_tsv(text: &str) -> Result<UpdateTrace, TraceIoError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines.next().ok_or(TraceIoError::BadMagic)?;
    if magic.trim() != "# mutcon-trace v1" {
        return Err(TraceIoError::BadMagic);
    }

    let mut name: Option<String> = None;
    let mut start: Option<u64> = None;
    let mut end: Option<u64> = None;
    let mut events: Vec<UpdateEvent> = Vec::new();

    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('#') {
            let header = header.trim();
            if let Some(v) = header.strip_prefix("name:") {
                name = Some(v.trim().to_owned());
            } else if let Some(v) = header.strip_prefix("start_ms:") {
                start = v.trim().parse().ok();
            } else if let Some(v) = header.strip_prefix("end_ms:") {
                end = v.trim().parse().ok();
            }
            continue;
        }
        let base = start.ok_or(TraceIoError::MissingHeader("start_ms"))?;
        let bad = || TraceIoError::BadLine { line: idx + 1 };
        let (at_str, val_str) = line.split_once('\t').ok_or_else(bad)?;
        let rel: u64 = at_str.trim().parse().map_err(|_| bad())?;
        let at = Timestamp::from_millis(base + rel);
        let value = match val_str.trim() {
            "-" => None,
            v => Some(
                v.parse::<f64>()
                    .ok()
                    .and_then(Value::checked_new)
                    .ok_or_else(bad)?,
            ),
        };
        events.push(UpdateEvent { at, value });
    }

    let name = name.ok_or(TraceIoError::MissingHeader("name"))?;
    let start = Timestamp::from_millis(start.ok_or(TraceIoError::MissingHeader("start_ms"))?);
    let end = Timestamp::from_millis(end.ok_or(TraceIoError::MissingHeader("end_ms"))?);
    Ok(UpdateTrace::new(name, start, end, events)?)
}

/// Encodes a trace as pretty JSON.
///
/// The schema is stable and hand-written:
/// `{"name": …, "start": ms, "end": ms, "events": [{"at": ms, "value": f64|null}]}`.
///
/// # Errors
///
/// Infallible in practice; the `Result` is kept for API stability.
pub fn to_json(trace: &UpdateTrace) -> Result<String, TraceIoError> {
    let mut out = String::with_capacity(64 + trace.events().len() * 32);
    out.push_str("{\n  \"name\": ");
    crate::json::write_escaped(&mut out, trace.name());
    out.push_str(&format!(",\n  \"start\": {},", trace.start().as_millis()));
    out.push_str(&format!("\n  \"end\": {},", trace.end().as_millis()));
    out.push_str("\n  \"events\": [");
    for (i, e) in trace.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        match e.value {
            Some(v) => out.push_str(&format!(
                "{{\"at\": {}, \"value\": {}}}",
                e.at.as_millis(),
                v.as_f64()
            )),
            None => out.push_str(&format!("{{\"at\": {}, \"value\": null}}", e.at.as_millis())),
        }
    }
    out.push_str("\n  ]\n}\n");
    Ok(out)
}

/// Decodes a trace from JSON.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed JSON. Invariants are re-checked
/// by round-tripping through [`UpdateTrace::new`].
pub fn from_json(text: &str) -> Result<UpdateTrace, TraceIoError> {
    let doc = crate::json::parse(text)?;
    let name = doc
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or(TraceIoError::Schema("name"))?;
    let start = doc
        .get("start")
        .and_then(|v| v.as_u64())
        .ok_or(TraceIoError::Schema("start"))?;
    let end = doc
        .get("end")
        .and_then(|v| v.as_u64())
        .ok_or(TraceIoError::Schema("end"))?;
    let raw_events = doc
        .get("events")
        .and_then(|v| v.as_array())
        .ok_or(TraceIoError::Schema("events"))?;
    let mut events = Vec::with_capacity(raw_events.len());
    for raw in raw_events {
        let at = raw
            .get("at")
            .and_then(|v| v.as_u64())
            .ok_or(TraceIoError::Schema("events[].at"))?;
        let value = match raw.get("value") {
            None | Some(crate::json::Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .and_then(Value::checked_new)
                    .ok_or(TraceIoError::Schema("events[].value"))?,
            ),
        };
        events.push(UpdateEvent {
            at: Timestamp::from_millis(at),
            value,
        });
    }
    // The parser bypasses the constructor; validate invariants the same
    // way the TSV path does.
    Ok(UpdateTrace::new(
        name.to_owned(),
        Timestamp::from_millis(start),
        Timestamp::from_millis(end),
        events,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::NamedTrace;
    use crate::model::UpdateEvent;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn valued_trace() -> UpdateTrace {
        UpdateTrace::new(
            "AT&T",
            secs(0),
            secs(100),
            vec![
                UpdateEvent::valued(secs(0), Value::new(36.15)),
                UpdateEvent::valued(secs(10), Value::new(36.25)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tsv_round_trips_valued() {
        let t = valued_trace();
        let text = to_tsv(&t);
        assert!(text.starts_with("# mutcon-trace v1\n"));
        let back = from_tsv(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tsv_round_trips_temporal() {
        let t = UpdateTrace::new(
            "news",
            secs(5),
            secs(50),
            vec![UpdateEvent::temporal(secs(5)), UpdateEvent::temporal(secs(20))],
        )
        .unwrap();
        let back = from_tsv(&to_tsv(&t)).unwrap();
        assert_eq!(back, t);
        assert!(!back.is_valued());
    }

    #[test]
    fn tsv_round_trips_catalog_trace() {
        let t = NamedTrace::Att.generate();
        let back = from_tsv(&to_tsv(&t)).unwrap();
        assert_eq!(back.update_count(), t.update_count());
        assert_eq!(back.value_at(secs(3_000)), t.value_at(secs(3_000)));
    }

    #[test]
    fn tsv_rejects_bad_input() {
        assert!(matches!(from_tsv(""), Err(TraceIoError::BadMagic)));
        assert!(matches!(from_tsv("garbage\n"), Err(TraceIoError::BadMagic)));
        let no_name = "# mutcon-trace v1\n# start_ms: 0\n# end_ms: 10\n";
        assert!(matches!(
            from_tsv(no_name),
            Err(TraceIoError::MissingHeader("name"))
        ));
        let bad_line = "# mutcon-trace v1\n# name: x\n# start_ms: 0\n# end_ms: 10\nnot-a-number\t-\n";
        assert!(matches!(
            from_tsv(bad_line),
            Err(TraceIoError::BadLine { line: 5 })
        ));
        let bad_value = "# mutcon-trace v1\n# name: x\n# start_ms: 0\n# end_ms: 10\n0\tNaN\n";
        assert!(matches!(from_tsv(bad_value), Err(TraceIoError::BadLine { .. })));
        let event_before_header =
            "# mutcon-trace v1\n0\t-\n# name: x\n# start_ms: 0\n# end_ms: 10\n";
        assert!(matches!(
            from_tsv(event_before_header),
            Err(TraceIoError::MissingHeader("start_ms"))
        ));
    }

    #[test]
    fn tsv_rejects_invalid_trace_structure() {
        let out_of_order =
            "# mutcon-trace v1\n# name: x\n# start_ms: 0\n# end_ms: 10000\n5000\t-\n1000\t-\n";
        assert!(matches!(
            from_tsv(out_of_order),
            Err(TraceIoError::Invalid(_))
        ));
    }

    #[test]
    fn json_round_trips() {
        let t = valued_trace();
        let text = to_json(&t).unwrap();
        let back = from_json(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_revalidates_invariants() {
        // Hand-crafted JSON with out-of-order events must be rejected.
        let bad = r#"{
            "name": "x",
            "start": 0,
            "end": 10000,
            "events": [
                {"at": 5000, "value": null},
                {"at": 1000, "value": null}
            ]
        }"#;
        assert!(from_json(bad).is_err());
    }

    #[test]
    fn error_display() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::MissingHeader("name").to_string().contains("name"));
        assert!(TraceIoError::BadLine { line: 3 }.to_string().contains('3'));
    }
}
