//! The update-trace model.
//!
//! An [`UpdateTrace`] is the complete server-side history of one object
//! over an observation window: when it was updated and (for value-bearing
//! objects) what value each update produced. Traces drive the simulated
//! origin server, and — because they are *ground truth* — also the exact
//! fidelity accounting of the experiment harness.

use std::fmt;


use mutcon_core::object::Version;
use mutcon_core::semantics::ValidityInterval;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;

/// One server-side update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateEvent {
    /// When the update happened.
    pub at: Timestamp,
    /// The new value, for value-bearing objects.
    pub value: Option<Value>,
}

impl UpdateEvent {
    /// A purely temporal update (news page changed).
    pub fn temporal(at: Timestamp) -> Self {
        UpdateEvent { at, value: None }
    }

    /// A value update (stock tick).
    pub fn valued(at: Timestamp, value: Value) -> Self {
        UpdateEvent {
            at,
            value: Some(value),
        }
    }
}

/// Error returned for structurally invalid traces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A trace needs at least one event (the object's initial version).
    Empty,
    /// Events must be strictly increasing in time.
    OutOfOrder {
        /// Index of the offending event.
        index: usize,
    },
    /// An event lies outside `[start, end]`.
    OutOfRange {
        /// Index of the offending event.
        index: usize,
    },
    /// `end` precedes `start`.
    InvalidWindow,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => f.write_str("trace must contain at least one event"),
            TraceError::OutOfOrder { index } => {
                write!(f, "event {index} is not strictly after its predecessor")
            }
            TraceError::OutOfRange { index } => {
                write!(f, "event {index} lies outside the trace window")
            }
            TraceError::InvalidWindow => f.write_str("trace end precedes start"),
        }
    }
}

impl std::error::Error for TraceError {}

/// The full update history of one object over `[start, end]`.
///
/// The first event is the object's *initial version* (version 0); each
/// subsequent event increments the version, mirroring the paper's §2
/// version model.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateTrace {
    name: String,
    start: Timestamp,
    end: Timestamp,
    events: Vec<UpdateEvent>,
    /// The events' instants, kept as a parallel array so the origin can
    /// hand out *borrowed* modification-history slices (`&[Timestamp]`)
    /// on the poll hot path instead of collecting a fresh `Vec` per poll.
    times: Vec<Timestamp>,
}

impl UpdateTrace {
    /// Creates a trace, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the window is inverted, the event list is
    /// empty, out of order, or strays outside the window.
    pub fn new(
        name: impl Into<String>,
        start: Timestamp,
        end: Timestamp,
        events: Vec<UpdateEvent>,
    ) -> Result<Self, TraceError> {
        if end < start {
            return Err(TraceError::InvalidWindow);
        }
        if events.is_empty() {
            return Err(TraceError::Empty);
        }
        for (i, w) in events.windows(2).enumerate() {
            if w[1].at <= w[0].at {
                return Err(TraceError::OutOfOrder { index: i + 1 });
            }
        }
        for (i, e) in events.iter().enumerate() {
            if e.at < start || e.at > end {
                return Err(TraceError::OutOfRange { index: i });
            }
        }
        let times = events.iter().map(|e| e.at).collect();
        Ok(UpdateTrace {
            name: name.into(),
            start,
            end,
            events,
            times,
        })
    }

    /// The trace's display name (e.g. `"CNN/FN"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Start of the observation window.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// End of the observation window.
    pub fn end(&self) -> Timestamp {
        self.end
    }

    /// Window length.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }

    /// The events, oldest first.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// Number of *updates* — transitions after the initial version.
    pub fn update_count(&self) -> usize {
        self.events.len() - 1
    }

    /// Whether the trace carries values on every event.
    pub fn is_valued(&self) -> bool {
        self.events.iter().all(|e| e.value.is_some())
    }

    /// Mean gap between consecutive events, or `None` with fewer than two.
    pub fn mean_interval(&self) -> Option<Duration> {
        if self.events.len() < 2 {
            return None;
        }
        let total = self
            .events
            .last()
            .expect("non-empty")
            .at
            .since(self.events[0].at);
        Some(total / (self.events.len() as u64 - 1))
    }

    /// Index of the version current at time `t` (the last event at or
    /// before `t`), or `None` before the first event.
    pub fn version_index_at(&self, t: Timestamp) -> Option<usize> {
        match self.times.binary_search(&t) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// The version number current at `t` (version model of §2).
    pub fn version_at(&self, t: Timestamp) -> Option<Version> {
        self.version_index_at(t).map(|i| Version::from_raw(i as u64))
    }

    /// The event that created the version current at `t`.
    pub fn event_at(&self, t: Timestamp) -> Option<&UpdateEvent> {
        self.version_index_at(t).map(|i| &self.events[i])
    }

    /// The server-side value at `t`, for valued traces.
    pub fn value_at(&self, t: Timestamp) -> Option<Value> {
        self.event_at(t).and_then(|e| e.value)
    }

    /// The first event strictly after `t`, if any.
    pub fn next_event_after(&self, t: Timestamp) -> Option<&UpdateEvent> {
        let idx = match self.events.binary_search_by(|e| e.at.cmp(&t)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.events.get(idx)
    }

    /// Events with `t1 < at ≤ t2` — "updates since the previous poll" for
    /// a poll at `t2` following one at `t1`.
    pub fn events_between(&self, t1: Timestamp, t2: Timestamp) -> &[UpdateEvent] {
        let (lo, hi) = self.range_between(t1, t2);
        &self.events[lo..hi]
    }

    /// The instants of all events, oldest first (parallel to
    /// [`UpdateTrace::events`]).
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Instants of events with `t1 < at ≤ t2`, as a borrowed slice — the
    /// §5.1 modification history for a poll at `t2` validated at `t1`,
    /// with no per-poll allocation.
    pub fn times_between(&self, t1: Timestamp, t2: Timestamp) -> &[Timestamp] {
        let (lo, hi) = self.range_between(t1, t2);
        &self.times[lo..hi]
    }

    fn range_between(&self, t1: Timestamp, t2: Timestamp) -> (usize, usize) {
        let lo = match self.times.binary_search(&t1) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let hi = match self.times.binary_search(&t2) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        (lo, hi)
    }

    /// The server-validity interval of the version indexed `i`: from its
    /// creation to the next update (open-ended for the last version).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn validity_of(&self, i: usize) -> ValidityInterval {
        let start = self.events[i].at;
        match self.events.get(i + 1) {
            Some(next) => ValidityInterval::closed(start, next.at),
            None => ValidityInterval::open(start),
        }
    }

    /// Smallest and largest value in the trace, for valued traces with at
    /// least one value.
    pub fn value_range(&self) -> Option<(Value, Value)> {
        let mut iter = self.events.iter().filter_map(|e| e.value);
        let first = iter.next()?;
        Some(iter.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn trace() -> UpdateTrace {
        UpdateTrace::new(
            "t",
            secs(0),
            secs(100),
            vec![
                UpdateEvent::valued(secs(0), Value::new(10.0)),
                UpdateEvent::valued(secs(20), Value::new(12.0)),
                UpdateEvent::valued(secs(50), Value::new(11.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert_eq!(
            UpdateTrace::new("x", secs(10), secs(0), vec![]).unwrap_err(),
            TraceError::InvalidWindow
        );
        assert_eq!(
            UpdateTrace::new("x", secs(0), secs(10), vec![]).unwrap_err(),
            TraceError::Empty
        );
        let dup = vec![UpdateEvent::temporal(secs(5)), UpdateEvent::temporal(secs(5))];
        assert_eq!(
            UpdateTrace::new("x", secs(0), secs(10), dup).unwrap_err(),
            TraceError::OutOfOrder { index: 1 }
        );
        let outside = vec![UpdateEvent::temporal(secs(11))];
        assert_eq!(
            UpdateTrace::new("x", secs(0), secs(10), outside).unwrap_err(),
            TraceError::OutOfRange { index: 0 }
        );
        assert!(!TraceError::Empty.to_string().is_empty());
    }

    #[test]
    fn basic_accessors() {
        let t = trace();
        assert_eq!(t.name(), "t");
        assert_eq!(t.duration(), Duration::from_secs(100));
        assert_eq!(t.update_count(), 2);
        assert_eq!(t.events().len(), 3);
        assert!(t.is_valued());
        assert_eq!(t.mean_interval(), Some(Duration::from_secs(25)));
    }

    #[test]
    fn version_lookup() {
        let t = trace();
        assert_eq!(t.version_at(secs(0)), Some(Version::from_raw(0)));
        assert_eq!(t.version_at(secs(19)), Some(Version::from_raw(0)));
        assert_eq!(t.version_at(secs(20)), Some(Version::from_raw(1)));
        assert_eq!(t.version_at(secs(99)), Some(Version::from_raw(2)));
        // Before the first event the object has no version yet.
        let late = UpdateTrace::new(
            "x",
            secs(0),
            secs(10),
            vec![UpdateEvent::temporal(secs(5))],
        )
        .unwrap();
        assert_eq!(late.version_at(secs(1)), None);
    }

    #[test]
    fn value_lookup() {
        let t = trace();
        assert_eq!(t.value_at(secs(10)), Some(Value::new(10.0)));
        assert_eq!(t.value_at(secs(20)), Some(Value::new(12.0)));
        assert_eq!(t.value_at(secs(100)), Some(Value::new(11.0)));
        assert_eq!(t.value_range(), Some((Value::new(10.0), Value::new(12.0))));
    }

    #[test]
    fn next_event_lookup() {
        let t = trace();
        assert_eq!(t.next_event_after(secs(0)).unwrap().at, secs(20));
        assert_eq!(t.next_event_after(secs(20)).unwrap().at, secs(50));
        assert_eq!(t.next_event_after(secs(19)).unwrap().at, secs(20));
        assert!(t.next_event_after(secs(50)).is_none());
    }

    #[test]
    fn events_between_is_half_open() {
        let t = trace();
        let between = t.events_between(secs(0), secs(50));
        assert_eq!(between.len(), 2);
        assert_eq!(between[0].at, secs(20));
        assert!(t.events_between(secs(50), secs(100)).is_empty());
        assert_eq!(t.events_between(secs(19), secs(20)).len(), 1);
    }

    #[test]
    fn times_mirror_events() {
        let t = trace();
        assert_eq!(t.times(), &[secs(0), secs(20), secs(50)]);
        assert_eq!(t.times_between(secs(0), secs(50)), &[secs(20), secs(50)]);
        assert!(t.times_between(secs(50), secs(100)).is_empty());
        assert_eq!(
            t.times_between(secs(0), secs(50)).len(),
            t.events_between(secs(0), secs(50)).len()
        );
    }

    #[test]
    fn validity_intervals() {
        let t = trace();
        assert_eq!(
            t.validity_of(0),
            ValidityInterval::closed(secs(0), secs(20))
        );
        assert_eq!(t.validity_of(2), ValidityInterval::open(secs(50)));
    }

    #[test]
    fn temporal_trace_has_no_values() {
        let t = UpdateTrace::new(
            "news",
            secs(0),
            secs(10),
            vec![UpdateEvent::temporal(secs(0)), UpdateEvent::temporal(secs(5))],
        )
        .unwrap();
        assert!(!t.is_valued());
        assert_eq!(t.value_at(secs(6)), None);
        assert_eq!(t.value_range(), None);
    }

    #[test]
    fn single_event_trace() {
        let t = UpdateTrace::new(
            "one",
            secs(0),
            secs(10),
            vec![UpdateEvent::temporal(secs(0))],
        )
        .unwrap();
        assert_eq!(t.update_count(), 0);
        assert_eq!(t.mean_interval(), None);
        assert_eq!(t.validity_of(0), ValidityInterval::open(secs(0)));
    }
}
