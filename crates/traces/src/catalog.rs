//! The named workloads of the paper's evaluation (Tables 2 and 3).
//!
//! Each [`NamedTrace`] pins a generator configuration — duration, update
//! count, diurnal phase or price band, and a fixed seed — calibrated to
//! the published characteristics:
//!
//! | Trace (Table 2)     | Window                       | Updates | Mean gap |
//! |---------------------|------------------------------|---------|----------|
//! | CNN Financial News  | Aug 7 13:04 – Aug 9 14:34    | 113     | 26 min   |
//! | NY Times (AP)       | Aug 7 14:07 – Aug 9 11:25    | 233     | 11.6 min |
//! | NY Times (Reuters)  | Aug 7 14:12 – Aug 9 11:25    | 133     | 20.3 min |
//! | Guardian            | Aug 6 13:40 – Aug 9 15:32    | 902     | 4.9 min  |
//!
//! | Trace (Table 3) | Window          | Updates | Band            |
//! |-----------------|-----------------|---------|-----------------|
//! | AT&T            | 3 h (afternoon) | 653     | \$35.8 – \$36.5 |
//! | Yahoo           | 3 h (afternoon) | 2204    | \$160.2–\$171.2 |
//!
//! Windows are expressed as lengths (the absolute dates only matter for
//! the diurnal phase, captured by the start hour).

use mutcon_core::time::Duration;
use mutcon_core::value::Value;

use crate::generator::{NewsTraceBuilder, StockTraceBuilder};
use crate::model::UpdateTrace;

/// A workload from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedTrace {
    /// CNN Financial News Briefs (Table 2, row 1).
    CnnFn,
    /// NY Times Breaking News, AP feed (Table 2, row 2).
    NytAp,
    /// NY Times Breaking News, Reuters feed (Table 2, row 3).
    NytReuters,
    /// Guardian Breaking News (Table 2, row 4).
    Guardian,
    /// AT&T stock quotes (Table 3, row 1).
    Att,
    /// Yahoo stock quotes (Table 3, row 2).
    Yahoo,
}

impl NamedTrace {
    /// All Table 2 (temporal) workloads, in table order.
    pub const TEMPORAL: [NamedTrace; 4] = [
        NamedTrace::CnnFn,
        NamedTrace::NytAp,
        NamedTrace::NytReuters,
        NamedTrace::Guardian,
    ];

    /// All Table 3 (value) workloads, in table order.
    pub const VALUE: [NamedTrace; 2] = [NamedTrace::Att, NamedTrace::Yahoo];

    /// The trace's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            NamedTrace::CnnFn => "CNN/FN",
            NamedTrace::NytAp => "NYTimes/AP",
            NamedTrace::NytReuters => "NYTimes/Reuters",
            NamedTrace::Guardian => "Guardian",
            NamedTrace::Att => "AT&T",
            NamedTrace::Yahoo => "Yahoo",
        }
    }

    /// Window length.
    pub fn duration(self) -> Duration {
        match self {
            // Aug 7 13:04 → Aug 9 14:34 = 49 h 30 min.
            NamedTrace::CnnFn => Duration::from_mins(49 * 60 + 30),
            // Aug 7 14:07 → Aug 9 11:25 = 45 h 18 min.
            NamedTrace::NytAp => Duration::from_mins(45 * 60 + 18),
            // Aug 7 14:12 → Aug 9 11:25 = 45 h 13 min.
            NamedTrace::NytReuters => Duration::from_mins(45 * 60 + 13),
            // Aug 6 13:40 → Aug 9 15:32 = 73 h 52 min.
            NamedTrace::Guardian => Duration::from_mins(73 * 60 + 52),
            NamedTrace::Att | NamedTrace::Yahoo => Duration::from_hours(3),
        }
    }

    /// Number of updates reported in the tables.
    pub fn update_count(self) -> usize {
        match self {
            NamedTrace::CnnFn => 113,
            NamedTrace::NytAp => 233,
            NamedTrace::NytReuters => 133,
            NamedTrace::Guardian => 902,
            NamedTrace::Att => 653,
            NamedTrace::Yahoo => 2204,
        }
    }

    /// Price band, for the Table 3 workloads.
    pub fn value_band(self) -> Option<(Value, Value)> {
        match self {
            NamedTrace::Att => Some((Value::new(35.8), Value::new(36.5))),
            NamedTrace::Yahoo => Some((Value::new(160.2), Value::new(171.2))),
            _ => None,
        }
    }

    /// Wall-clock hour at which the collection window opened (sets the
    /// diurnal phase for the news workloads).
    pub fn start_hour(self) -> f64 {
        match self {
            NamedTrace::CnnFn => 13.07,      // 13:04
            NamedTrace::NytAp => 14.12,      // 14:07
            NamedTrace::NytReuters => 14.2,  // 14:12
            NamedTrace::Guardian => 13.67,   // 13:40
            NamedTrace::Att => 13.83,        // 13:50
            NamedTrace::Yahoo => 13.5,       // 13:30
        }
    }

    /// The fixed seed that pins this workload's realization.
    ///
    /// The stock seeds were recalibrated when the workspace switched to
    /// its in-tree PRNG: realizations changed, and these are the ones
    /// whose poll/fidelity trade-off curves match the paper's shapes.
    pub fn seed(self) -> u64 {
        match self {
            NamedTrace::CnnFn => 0x1CDC_5001,
            NamedTrace::NytAp => 0x1CDC_5002,
            NamedTrace::NytReuters => 0x1CDC_5003,
            NamedTrace::Guardian => 0x1CDC_5004,
            NamedTrace::Att => 0x1CDC_5105,
            NamedTrace::Yahoo => 0x1CDC_5106,
        }
    }

    /// Generates the pinned realization of this workload.
    pub fn generate(self) -> UpdateTrace {
        self.generate_with_seed(self.seed())
    }

    /// Generates a differently seeded realization (for robustness runs
    /// across multiple synthetic "collections").
    pub fn generate_with_seed(self, seed: u64) -> UpdateTrace {
        match self {
            NamedTrace::CnnFn | NamedTrace::NytAp | NamedTrace::NytReuters
            | NamedTrace::Guardian => {
                NewsTraceBuilder::new(self.name(), self.duration(), self.update_count())
                    .start_hour(self.start_hour())
                    .seed(seed)
                    .build()
                    .expect("catalog news parameters are valid")
            }
            NamedTrace::Att | NamedTrace::Yahoo => {
                let (lo, hi) = self.value_band().expect("value workload");
                StockTraceBuilder::new(
                    self.name(),
                    self.duration(),
                    self.update_count(),
                    lo.as_f64(),
                    hi.as_f64(),
                )
                .seed(seed)
                .build()
                .expect("catalog stock parameters are valid")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_traces_match_table_2() {
        // (trace, expected mean gap in minutes from Table 2)
        let expected = [
            (NamedTrace::CnnFn, 26.0),
            (NamedTrace::NytAp, 11.6),
            (NamedTrace::NytReuters, 20.3),
            (NamedTrace::Guardian, 4.9),
        ];
        for (nt, gap_min) in expected {
            let t = nt.generate();
            assert_eq!(t.update_count(), nt.update_count(), "{}", nt.name());
            assert_eq!(t.duration(), nt.duration());
            assert!(!t.is_valued());
            // duration / updates ≈ the table's average update frequency.
            let avg = t.duration().as_mins_f64() / t.update_count() as f64;
            assert!(
                (avg - gap_min).abs() / gap_min < 0.1,
                "{}: mean gap {avg:.1} min, table says {gap_min}",
                nt.name()
            );
        }
    }

    #[test]
    fn value_traces_match_table_3() {
        for nt in NamedTrace::VALUE {
            let t = nt.generate();
            assert_eq!(t.update_count(), nt.update_count());
            let (lo_band, hi_band) = nt.value_band().unwrap();
            let (lo, hi) = t.value_range().unwrap();
            assert!(lo >= lo_band && hi <= hi_band, "{}", nt.name());
        }
        assert_eq!(NamedTrace::CnnFn.value_band(), None);
    }

    #[test]
    fn generation_is_pinned() {
        let a = NamedTrace::NytAp.generate();
        let b = NamedTrace::NytAp.generate();
        assert_eq!(a, b);
        let c = NamedTrace::NytAp.generate_with_seed(99);
        assert_ne!(a, c);
        assert_eq!(c.update_count(), a.update_count());
    }

    #[test]
    fn names_and_groups() {
        assert_eq!(NamedTrace::TEMPORAL.len(), 4);
        assert_eq!(NamedTrace::VALUE.len(), 2);
        for nt in NamedTrace::TEMPORAL.iter().chain(&NamedTrace::VALUE) {
            assert!(!nt.name().is_empty());
            assert!(nt.seed() != 0);
        }
    }
}
