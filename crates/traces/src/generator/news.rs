//! News-page update generator: a non-homogeneous Poisson process shaped by
//! a diurnal activity profile.
//!
//! Figure 4(a) of the paper shows the defining structure of news-update
//! traces: bursts of updates during the day and hours of total silence
//! every night. The generator reproduces it by drawing a caller-chosen
//! *exact* number of update instants from the normalized intensity
//! `λ(t) ∝ activity(hour-of-day(t))` — exact counts keep the Table 2
//! statistics on the nose, while the per-instant placement remains
//! random (seeded).

use mutcon_core::time::{Duration, Timestamp};
use mutcon_sim::rng::SimRng;

use crate::model::{TraceError, UpdateEvent, UpdateTrace};

/// Relative newsroom activity for each hour of the day (0–23).
///
/// Values are relative weights (they need not sum to anything); hours with
/// weight zero never receive updates.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// A flat profile: updates uniformly likely at any hour.
    pub fn flat() -> Self {
        DiurnalProfile { weights: [1.0; 24] }
    }

    /// A newsroom profile: silent in the small hours (02:00–05:59), a
    /// morning ramp, a midday/afternoon peak and a gradual evening
    /// decline — the shape visible in Figure 4(a).
    pub fn newsroom() -> Self {
        let mut weights = [0.0f64; 24];
        let shape: [(usize, f64); 24] = [
            (0, 0.3),
            (1, 0.1),
            (2, 0.0),
            (3, 0.0),
            (4, 0.0),
            (5, 0.0),
            (6, 0.2),
            (7, 0.5),
            (8, 0.9),
            (9, 1.2),
            (10, 1.4),
            (11, 1.5),
            (12, 1.5),
            (13, 1.6),
            (14, 1.6),
            (15, 1.5),
            (16, 1.4),
            (17, 1.3),
            (18, 1.1),
            (19, 1.0),
            (20, 0.9),
            (21, 0.8),
            (22, 0.6),
            (23, 0.4),
        ];
        for (h, w) in shape {
            weights[h] = w;
        }
        DiurnalProfile { weights }
    }

    /// Builds a profile from explicit per-hour weights.
    ///
    /// # Errors
    ///
    /// Returns `None` if any weight is negative/non-finite or all weights
    /// are zero.
    pub fn from_weights(weights: [f64; 24]) -> Option<Self> {
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        if weights.iter().sum::<f64>() <= 0.0 {
            return None;
        }
        Some(DiurnalProfile { weights })
    }

    /// The weight for a given hour (0–23).
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn weight(&self, hour: usize) -> f64 {
        self.weights[hour]
    }
}

/// Builder for a news-style (temporal) update trace.
#[derive(Debug, Clone)]
pub struct NewsTraceBuilder {
    name: String,
    duration: Duration,
    updates: usize,
    start_hour: f64,
    profile: DiurnalProfile,
    seed: u64,
}

impl NewsTraceBuilder {
    /// Starts building a trace with the given name, window length, and
    /// exact update count (events beyond the initial version).
    pub fn new(name: impl Into<String>, duration: Duration, updates: usize) -> Self {
        NewsTraceBuilder {
            name: name.into(),
            duration,
            updates,
            start_hour: 13.0, // the paper's collections began early afternoon
            profile: DiurnalProfile::newsroom(),
            seed: 0,
        }
    }

    /// Wall-clock hour of day (0–24) at which the trace window opens;
    /// determines where the diurnal quiet periods fall.
    pub fn start_hour(mut self, hour: f64) -> Self {
        self.start_hour = hour.rem_euclid(24.0);
        self
    }

    /// Sets the diurnal profile.
    pub fn profile(mut self, profile: DiurnalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace: an initial version at the window start plus
    /// exactly `updates` diurnally placed update events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the window cannot hold the requested
    /// number of distinct millisecond instants.
    pub fn build(self) -> Result<UpdateTrace, TraceError> {
        let mut rng = SimRng::seed_from_u64(self.seed);
        let start = Timestamp::ZERO;
        let end = start + self.duration;

        // Piecewise-constant intensity over hour-aligned segments,
        // beginning mid-hour if start_hour is fractional.
        let segments = hour_segments(self.start_hour, self.duration, &self.profile);
        let total_weight: f64 = segments.iter().map(|s| s.weight()).sum();
        // All-zero windows (short trace inside the quiet hours) fall back
        // to uniform placement rather than failing.
        let uniform = total_weight <= 0.0;

        let mut instants: Vec<u64> = (0..self.updates)
            .map(|_| {
                if uniform {
                    rng.uniform_u64(1, self.duration.as_millis().max(2))
                } else {
                    sample_from_segments(&segments, total_weight, &mut rng)
                }
            })
            .collect();
        instants.sort_unstable();
        // Enforce strict monotonicity at millisecond resolution; an update
        // at the very start would collide with the initial version.
        let mut prev = 0u64;
        for t in &mut instants {
            if *t <= prev {
                *t = prev + 1;
            }
            prev = *t;
        }
        if prev > self.duration.as_millis() {
            return Err(TraceError::OutOfRange {
                index: self.updates,
            });
        }

        let mut events = Vec::with_capacity(self.updates + 1);
        events.push(UpdateEvent::temporal(start));
        events.extend(
            instants
                .into_iter()
                .map(|ms| UpdateEvent::temporal(start + Duration::from_millis(ms))),
        );
        UpdateTrace::new(self.name, start, end, events)
    }
}

/// One hour-aligned stretch of the window with a constant intensity.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// Offset of the segment start within the window, ms.
    offset_ms: u64,
    /// Segment length, ms.
    len_ms: u64,
    /// Profile weight (per-ms intensity, unnormalized).
    rate: f64,
}

impl Segment {
    fn weight(&self) -> f64 {
        self.rate * self.len_ms as f64
    }
}

fn hour_segments(start_hour: f64, duration: Duration, profile: &DiurnalProfile) -> Vec<Segment> {
    const HOUR_MS: u64 = 3_600_000;
    let mut segments = Vec::new();
    let mut offset = 0u64;
    let total = duration.as_millis();
    // Absolute ms position on the wall clock, so hour boundaries align.
    let mut wall_ms = (start_hour * HOUR_MS as f64).round() as u64;
    while offset < total {
        let hour = (wall_ms / HOUR_MS) % 24;
        let until_next_hour = HOUR_MS - (wall_ms % HOUR_MS);
        let len = until_next_hour.min(total - offset);
        segments.push(Segment {
            offset_ms: offset,
            len_ms: len,
            rate: profile.weight(hour as usize),
        });
        offset += len;
        wall_ms += len;
    }
    segments
}

fn sample_from_segments(segments: &[Segment], total_weight: f64, rng: &mut SimRng) -> u64 {
    let mut target = rng.uniform() * total_weight;
    for seg in segments {
        let w = seg.weight();
        if target < w || std::ptr::eq(seg, segments.last().expect("non-empty")) {
            if w <= 0.0 {
                // Degenerate final segment: place at its start.
                return seg.offset_ms;
            }
            let frac = (target / w).clamp(0.0, 1.0 - f64::EPSILON);
            return seg.offset_ms + (frac * seg.len_ms as f64) as u64;
        }
        target -= w;
    }
    unreachable!("sampling always terminates at the last segment");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_update_count_and_window() {
        let trace = NewsTraceBuilder::new("test", Duration::from_hours(48), 113)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(trace.update_count(), 113);
        assert_eq!(trace.duration(), Duration::from_hours(48));
        assert_eq!(trace.events()[0].at, Timestamp::ZERO);
        assert!(!trace.is_valued());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NewsTraceBuilder::new("t", Duration::from_hours(24), 50)
            .seed(1)
            .build()
            .unwrap();
        let b = NewsTraceBuilder::new("t", Duration::from_hours(24), 50)
            .seed(1)
            .build()
            .unwrap();
        let c = NewsTraceBuilder::new("t", Duration::from_hours(24), 50)
            .seed(2)
            .build()
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn quiet_hours_stay_quiet() {
        // Window starts at 13:00; hours 02:00–05:59 have zero weight.
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(48), 500)
            .start_hour(13.0)
            .seed(3)
            .build()
            .unwrap();
        for e in &trace.events()[1..] {
            let wall_hour = ((13.0 + e.at.as_millis() as f64 / 3_600_000.0) % 24.0) as u32;
            assert!(
                !(2..6).contains(&wall_hour),
                "update at quiet hour {wall_hour} ({})",
                e.at
            );
        }
    }

    #[test]
    fn flat_profile_spreads_updates() {
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(10), 1_000)
            .profile(DiurnalProfile::flat())
            .seed(5)
            .build()
            .unwrap();
        // Count per 1-hour bucket; flat placement keeps buckets within a
        // loose band around 100.
        let mut buckets = [0u32; 10];
        for e in &trace.events()[1..] {
            buckets[(e.at.as_millis() / 3_600_000) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((50..200).contains(b), "bucket {i} has {b} updates");
        }
    }

    #[test]
    fn zero_weight_window_falls_back_to_uniform() {
        // 2-hour window starting 03:00: entirely inside the quiet period.
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(2), 10)
            .start_hour(3.0)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(trace.update_count(), 10);
    }

    #[test]
    fn events_strictly_increase() {
        let trace = NewsTraceBuilder::new("t", Duration::from_secs(10), 500)
            .profile(DiurnalProfile::flat())
            .seed(11)
            .build()
            .unwrap();
        for w in trace.events().windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    fn profile_validation() {
        assert!(DiurnalProfile::from_weights([0.0; 24]).is_none());
        let mut bad = [1.0; 24];
        bad[3] = -1.0;
        assert!(DiurnalProfile::from_weights(bad).is_none());
        bad[3] = f64::NAN;
        assert!(DiurnalProfile::from_weights(bad).is_none());
        assert!(DiurnalProfile::from_weights([1.0; 24]).is_some());
        assert_eq!(DiurnalProfile::newsroom().weight(3), 0.0);
        assert!(DiurnalProfile::newsroom().weight(13) > 1.0);
    }

    #[test]
    fn overfull_window_errors() {
        // 5 ms window cannot hold 100 distinct update instants.
        let result = NewsTraceBuilder::new("t", Duration::from_millis(5), 100)
            .profile(DiurnalProfile::flat())
            .build();
        assert!(result.is_err());
    }
}
