//! Stock-quote generator: a mean-reverting bounded random walk.
//!
//! Table 3 characterizes the paper's two stock traces by update count and
//! price band over a three-hour market window (AT&T: 653 updates in
//! \$35.8–36.5; Yahoo: 2204 updates in \$160.2–171.2). The generator
//! reproduces those statistics with:
//!
//! * tick instants on a jittered quasi-regular grid (quotes arrive at a
//!   fairly steady pace during market hours), and
//! * prices following an Ornstein–Uhlenbeck-style walk — a normal step
//!   plus mild pull towards the band centre, reflected at the band edges —
//!   which gives the *temporal locality* that makes rate extrapolation
//!   (§4.1) meaningful.

use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;
use mutcon_sim::rng::SimRng;

use crate::model::{TraceError, UpdateEvent, UpdateTrace};

/// Builder for a stock-style (valued) update trace.
#[derive(Debug, Clone)]
pub struct StockTraceBuilder {
    name: String,
    duration: Duration,
    updates: usize,
    min: f64,
    max: f64,
    initial: Option<f64>,
    volatility: f64,
    mean_reversion: f64,
    jitter: f64,
    seed: u64,
}

impl StockTraceBuilder {
    /// Starts building a trace with the given name, window length, exact
    /// update count and price band.
    pub fn new(
        name: impl Into<String>,
        duration: Duration,
        updates: usize,
        min: f64,
        max: f64,
    ) -> Self {
        StockTraceBuilder {
            name: name.into(),
            duration,
            updates,
            min,
            max,
            initial: None,
            volatility: 0.15,
            mean_reversion: 0.02,
            jitter: 0.35,
            seed: 0,
        }
    }

    /// Sets the opening price (defaults to the band midpoint).
    pub fn initial(mut self, price: f64) -> Self {
        self.initial = Some(price);
        self
    }

    /// Per-tick standard deviation as a fraction of the band width
    /// (default 0.15). Larger values make the price noisier.
    pub fn volatility(mut self, v: f64) -> Self {
        self.volatility = v;
        self
    }

    /// Pull-to-centre strength per tick (default 0.02); zero disables
    /// mean reversion.
    pub fn mean_reversion(mut self, kappa: f64) -> Self {
        self.mean_reversion = kappa;
        self
    }

    /// Tick-time jitter as a fraction of the grid spacing (default 0.35,
    /// clamped to `[0, 0.49]` so ticks cannot reorder).
    pub fn jitter(mut self, j: f64) -> Self {
        self.jitter = j.clamp(0.0, 0.49);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace: an opening quote at the window start plus
    /// exactly `updates` ticks.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for an inverted/degenerate price band, an
    /// opening price outside the band, non-finite parameters, or a window
    /// too short to hold the ticks.
    pub fn build(self) -> Result<UpdateTrace, TraceError> {
        // Price-band and parameter validation; TraceError::InvalidWindow
        // covers window problems, parameter issues map onto OutOfRange.
        if !(self.min.is_finite() && self.max.is_finite()) || self.min >= self.max {
            return Err(TraceError::InvalidWindow);
        }
        let initial = self.initial.unwrap_or((self.min + self.max) / 2.0);
        if !(self.min..=self.max).contains(&initial) {
            return Err(TraceError::OutOfRange { index: 0 });
        }
        if self.duration.as_millis() <= self.updates as u64 {
            return Err(TraceError::OutOfRange {
                index: self.updates,
            });
        }
        let volatility_ok = self.volatility.is_finite() && self.volatility > 0.0;
        let reversion_ok = self.mean_reversion.is_finite() && self.mean_reversion >= 0.0;
        if !volatility_ok || !reversion_ok {
            return Err(TraceError::OutOfRange { index: 0 });
        }

        let mut rng = SimRng::seed_from_u64(self.seed);
        let start = Timestamp::ZERO;
        let end = start + self.duration;
        let n = self.updates;

        // Jittered grid of tick instants.
        let spacing = self.duration.as_millis() as f64 / (n as f64 + 1.0);
        let mut instants: Vec<u64> = (1..=n)
            .map(|i| {
                let jitter = rng.uniform_range(-self.jitter, self.jitter) * spacing;
                ((i as f64 * spacing + jitter).max(1.0) as u64).min(self.duration.as_millis())
            })
            .collect();
        instants.sort_unstable();
        let mut prev = 0u64;
        for t in &mut instants {
            if *t <= prev {
                *t = prev + 1;
            }
            prev = *t;
        }
        if prev > self.duration.as_millis() {
            return Err(TraceError::OutOfRange { index: n });
        }

        // Mean-reverting bounded walk.
        let width = self.max - self.min;
        let mid = (self.min + self.max) / 2.0;
        // Scale the per-tick step so a full trace explores a good part of
        // the band regardless of tick count: σ_tick = volatility·width/√n.
        let sigma = self.volatility * width / (n.max(1) as f64).sqrt() * 4.0;
        let mut price = initial;
        let mut events = Vec::with_capacity(n + 1);
        events.push(UpdateEvent::valued(start, Value::new(price)));
        for ms in instants {
            let step = rng.normal(0.0, sigma) + self.mean_reversion * (mid - price);
            price = reflect(price + step, self.min, self.max);
            events.push(UpdateEvent::valued(
                start + Duration::from_millis(ms),
                Value::new(price),
            ));
        }
        UpdateTrace::new(self.name, start, end, events)
    }
}

/// Reflects `v` into `[min, max]`.
fn reflect(mut v: f64, min: f64, max: f64) -> f64 {
    let width = max - min;
    // A giant step could need several reflections.
    for _ in 0..64 {
        if v < min {
            v = min + (min - v);
        } else if v > max {
            v = max - (v - max);
        } else {
            return v;
        }
        // Pathological step sizes: clamp once reflections stop converging.
        if (v - min).abs() > 2.0 * width {
            return v.clamp(min, max);
        }
    }
    v.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn att() -> UpdateTrace {
        StockTraceBuilder::new("AT&T", Duration::from_hours(3), 653, 35.8, 36.5)
            .seed(101)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_count_and_band() {
        let t = att();
        assert_eq!(t.update_count(), 653);
        assert!(t.is_valued());
        let (lo, hi) = t.value_range().unwrap();
        assert!(lo.as_f64() >= 35.8 && hi.as_f64() <= 36.5);
        // The walk should explore a reasonable part of the band.
        assert!(hi.as_f64() - lo.as_f64() > 0.2, "band barely explored: {lo}..{hi}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = att();
        let b = att();
        assert_eq!(a, b);
        let c = StockTraceBuilder::new("AT&T", Duration::from_hours(3), 653, 35.8, 36.5)
            .seed(102)
            .build()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ticks_strictly_increase_and_stay_inside() {
        let t = att();
        for w in t.events().windows(2) {
            assert!(w[1].at > w[0].at);
        }
        assert!(t.events().last().unwrap().at <= t.end());
    }

    #[test]
    fn initial_price_respected() {
        let t = StockTraceBuilder::new("x", Duration::from_hours(1), 10, 100.0, 110.0)
            .initial(101.0)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(t.events()[0].value, Some(Value::new(101.0)));
    }

    #[test]
    fn validation_errors() {
        // Inverted band.
        assert!(StockTraceBuilder::new("x", Duration::from_hours(1), 10, 5.0, 4.0)
            .build()
            .is_err());
        // Initial outside band.
        assert!(
            StockTraceBuilder::new("x", Duration::from_hours(1), 10, 1.0, 2.0)
                .initial(9.0)
                .build()
                .is_err()
        );
        // Window too small for the tick count.
        assert!(StockTraceBuilder::new("x", Duration::from_millis(5), 100, 1.0, 2.0)
            .build()
            .is_err());
        // Bad volatility.
        assert!(StockTraceBuilder::new("x", Duration::from_hours(1), 10, 1.0, 2.0)
            .volatility(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn reflect_behaviour() {
        assert_eq!(reflect(5.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect(-1.0, 0.0, 10.0), 1.0);
        assert_eq!(reflect(12.0, 0.0, 10.0), 8.0);
        let huge = reflect(1e9, 0.0, 10.0);
        assert!((0.0..=10.0).contains(&huge));
    }

    #[test]
    fn successive_ticks_have_local_steps() {
        // Temporal locality: the typical tick-to-tick move is far smaller
        // than the full band (otherwise rate extrapolation is hopeless).
        let t = att();
        let steps: Vec<f64> = t
            .events()
            .windows(2)
            .map(|w| (w[1].value.unwrap().as_f64() - w[0].value.unwrap().as_f64()).abs())
            .collect();
        let mean_step = steps.iter().sum::<f64>() / steps.len() as f64;
        assert!(mean_step < 0.2, "steps too wild: {mean_step}");
    }
}
