//! Zipf catalog generator: a ranked object population with power-law
//! popularity.
//!
//! Web-cache request streams are famously Zipfian — the `r`-th most
//! popular object draws a fraction of requests proportional to
//! `1 / r^s` with `s ≈ 1` (Breslau et al., INFOCOM'99). The live-proxy
//! cache-pressure benches (`repro live-zipf`) and the trace layer share
//! this generator so both sides agree on the catalog paths and the
//! popularity law: a seeded catalog is deterministic, and independent
//! request streams are drawn from caller-provided [`SimRng`] forks so
//! two bench legs (L1 on vs off) can replay the *identical* sequence.

use mutcon_sim::rng::SimRng;

use crate::model::TraceError;

/// Builder for a [`ZipfCatalog`].
#[derive(Debug, Clone)]
pub struct ZipfCatalogBuilder {
    objects: usize,
    exponent: f64,
    prefix: String,
    seed: u64,
}

impl ZipfCatalogBuilder {
    /// Starts building a catalog of `objects` ranked paths.
    pub fn new(objects: usize) -> Self {
        ZipfCatalogBuilder {
            objects,
            exponent: 1.0,
            prefix: "/zipf".to_string(),
            seed: 0,
        }
    }

    /// Sets the Zipf exponent `s` (default 1.0 — the classic web law).
    pub fn exponent(mut self, s: f64) -> Self {
        self.exponent = s;
        self
    }

    /// Sets the path prefix (default `/zipf`, yielding `/zipf/0000`,
    /// `/zipf/0001`, … in rank order).
    pub fn prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// Sets the catalog seed — the root for [`ZipfCatalog::stream_rng`]
    /// forks, so the whole experiment is pinned by one number.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the catalog: per-rank probabilities `r^-s / H` (where `H`
    /// is the generalized harmonic normalizer) and their running sum for
    /// inverse-CDF sampling.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for an empty catalog or a non-finite /
    /// negative exponent.
    pub fn build(self) -> Result<ZipfCatalog, TraceError> {
        if self.objects == 0 {
            return Err(TraceError::InvalidWindow);
        }
        if !self.exponent.is_finite() || self.exponent < 0.0 {
            return Err(TraceError::OutOfRange { index: 0 });
        }
        let weights: Vec<f64> = (1..=self.objects)
            .map(|r| (r as f64).powf(-self.exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let digits = (self.objects - 1).max(1).to_string().len();
        let paths = (0..self.objects)
            .map(|i| format!("{}/{:0digits$}", self.prefix, i))
            .collect();
        Ok(ZipfCatalog {
            paths,
            cdf,
            exponent: self.exponent,
            seed: self.seed,
        })
    }
}

/// A ranked catalog of object paths with Zipf popularity.
///
/// Rank 0 is the hottest object. Sampling is by inverse CDF over a
/// caller-held [`SimRng`], so distinct streams (per connection, per
/// bench leg) fork deterministically from the catalog seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfCatalog {
    paths: Vec<String>,
    cdf: Vec<f64>,
    exponent: f64,
    seed: u64,
}

impl ZipfCatalog {
    /// Number of objects in the catalog.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the catalog is empty (never true for a built catalog).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The Zipf exponent the catalog was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// All paths in rank order (rank 0 first).
    pub fn paths(&self) -> &[String] {
        &self.paths
    }

    /// The path at `rank` (0 = hottest).
    pub fn path(&self, rank: usize) -> &str {
        &self.paths[rank]
    }

    /// The popularity mass of `rank` — the expected request fraction.
    pub fn probability(&self, rank: usize) -> f64 {
        let below = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - below
    }

    /// An RNG for request stream `stream`, forked deterministically from
    /// the catalog seed: the same `(seed, stream)` pair always replays
    /// the identical request sequence, and distinct streams are
    /// independent.
    pub fn stream_rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed).fork(stream)
    }

    /// Draws a rank from the Zipf law using `rng`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        // partition_point returns the first rank whose cumulative mass
        // reaches u; the final clamp absorbs floating-point shortfall in
        // the last CDF entry.
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.paths.len() - 1)
    }

    /// Draws a path from the Zipf law using `rng`.
    pub fn sample_path(&self, rng: &mut SimRng) -> &str {
        let rank = self.sample(rng);
        &self.paths[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ZipfCatalog {
        ZipfCatalogBuilder::new(512).seed(7).build().unwrap()
    }

    #[test]
    fn catalog_shape_and_paths() {
        let c = catalog();
        assert_eq!(c.len(), 512);
        assert!(!c.is_empty());
        assert_eq!(c.path(0), "/zipf/000");
        assert_eq!(c.path(511), "/zipf/511");
        assert_eq!(c.paths().len(), 512);
        let ten = ZipfCatalogBuilder::new(10).prefix("/obj").build().unwrap();
        assert_eq!(ten.path(9), "/obj/9");
    }

    #[test]
    fn probabilities_follow_the_power_law() {
        let c = catalog();
        // s = 1: p(rank r) / p(rank 2r) = 2 exactly (same normalizer).
        for r in [0usize, 1, 3, 7, 100] {
            let ratio = c.probability(r) / c.probability(2 * r + 1);
            let expected = (2 * r + 2) as f64 / (r + 1) as f64;
            assert!(
                (ratio - expected).abs() < 1e-9,
                "rank {r}: ratio {ratio} vs {expected}"
            );
        }
        let total: f64 = (0..c.len()).map(|r| c.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass sums to {total}");
    }

    #[test]
    fn empirical_rank_frequency_matches_expectation() {
        let c = catalog();
        let mut rng = c.stream_rng(0);
        let draws = 200_000usize;
        let mut counts = vec![0u64; c.len()];
        for _ in 0..draws {
            counts[c.sample(&mut rng)] += 1;
        }
        // The head of the distribution must match the law within a few
        // percent at this sample size.
        for r in 0..8 {
            let expected = c.probability(r) * draws as f64;
            let got = counts[r] as f64;
            assert!(
                (got - expected).abs() / expected < 0.05,
                "rank {r}: {got} draws vs expected {expected}"
            );
        }
        // Monotone-ish overall: the top decile dwarfs the bottom decile.
        let head: u64 = counts[..51].iter().sum();
        let tail: u64 = counts[461..].iter().sum();
        assert!(head > tail * 10, "head {head} vs tail {tail}");
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let c = catalog();
        let seq = |stream: u64| {
            let mut rng = c.stream_rng(stream);
            (0..64).map(|_| c.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3), "same stream must replay identically");
        assert_ne!(seq(3), seq(4), "distinct streams must differ");
        let other = ZipfCatalogBuilder::new(512).seed(8).build().unwrap();
        let mut rng = other.stream_rng(3);
        let reseeded: Vec<usize> = (0..64).map(|_| other.sample(&mut rng)).collect();
        assert_ne!(seq(3), reseeded, "catalog seed must matter");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let c = ZipfCatalogBuilder::new(64).exponent(0.0).build().unwrap();
        for r in 0..64 {
            assert!((c.probability(r) - 1.0 / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_errors() {
        assert!(ZipfCatalogBuilder::new(0).build().is_err());
        assert!(ZipfCatalogBuilder::new(8).exponent(f64::NAN).build().is_err());
        assert!(ZipfCatalogBuilder::new(8).exponent(-1.0).build().is_err());
    }

    #[test]
    fn sample_handles_cdf_edge() {
        // A single-object catalog always returns rank 0 even when the
        // uniform draw lands at the very top of the CDF.
        let c = ZipfCatalogBuilder::new(1).build().unwrap();
        let mut rng = c.stream_rng(0);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut rng), 0);
        }
    }
}
