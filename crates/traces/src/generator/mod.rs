//! Synthetic workload generators.
//!
//! Both generators produce an exact, caller-chosen number of updates (so
//! Table 2/3 statistics reproduce precisely) while drawing the update
//! *placement* and *values* from seeded randomness:
//!
//! * [`news`] — update instants from a non-homogeneous Poisson process
//!   shaped by a diurnal activity profile (news rooms go quiet at night —
//!   the structure visible in Figure 4(a)).
//! * [`stock`] — update instants at jittered quasi-regular ticks, values
//!   from a mean-reverting bounded random walk (prices wander but stay in
//!   a band, giving the temporal locality the adaptive TTR exploits).
//! * [`zipf`] — a ranked object catalog with power-law popularity, the
//!   request-side companion to the update-side generators (shared by the
//!   `live-zipf` cache-pressure bench and the trace layer).

pub mod news;
pub mod stock;
pub mod zipf;

pub use news::{DiurnalProfile, NewsTraceBuilder};
pub use stock::StockTraceBuilder;
pub use zipf::{ZipfCatalog, ZipfCatalogBuilder};
