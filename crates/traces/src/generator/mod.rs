//! Synthetic workload generators.
//!
//! Both generators produce an exact, caller-chosen number of updates (so
//! Table 2/3 statistics reproduce precisely) while drawing the update
//! *placement* and *values* from seeded randomness:
//!
//! * [`news`] — update instants from a non-homogeneous Poisson process
//!   shaped by a diurnal activity profile (news rooms go quiet at night —
//!   the structure visible in Figure 4(a)).
//! * [`stock`] — update instants at jittered quasi-regular ticks, values
//!   from a mean-reverting bounded random walk (prices wander but stay in
//!   a band, giving the temporal locality the adaptive TTR exploits).

pub mod news;
pub mod stock;

pub use news::{DiurnalProfile, NewsTraceBuilder};
pub use stock::StockTraceBuilder;
