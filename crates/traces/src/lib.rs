//! # mutcon-traces — workloads for the ICDCS'01 evaluation
//!
//! The paper evaluates against real traces collected in 2000: polls of
//! news pages (CNN/FN, NY Times AP & Reuters, Guardian — Table 2) and
//! stock quotes scraped from quote.yahoo.com (AT&T, Yahoo — Table 3).
//! Those artifacts no longer exist, so this crate provides *calibrated
//! synthetic equivalents*: generators whose outputs reproduce the
//! published statistics (duration, update count, mean inter-update gap,
//! price range) and the qualitative structure the algorithms exploit
//! (diurnal quiet periods for news, locality of rate-of-change for
//! stocks). Every named workload is pinned to a fixed seed, making all
//! experiments reproducible bit-for-bit.
//!
//! * [`model`] — the [`model::UpdateTrace`] type: an object's update
//!   history with optional values, plus time/version/value lookups.
//! * [`generator`] — the news (non-homogeneous Poisson with diurnal
//!   profile) and stock (mean-reverting bounded walk) generators.
//! * [`catalog`] — the six named workloads of Tables 2 and 3.
//! * [`stats`] — summaries and windowed update counts (Figures 4(a),
//!   6(a)).
//! * [`io`] — TSV (from scratch) and JSON (from scratch) persistence.
//! * [`transform`] — time compression/shift/window utilities (used by the
//!   live proxy to replay multi-day traces in seconds).
//!
//! ```
//! use mutcon_traces::catalog::NamedTrace;
//!
//! let trace = NamedTrace::CnnFn.generate();
//! let summary = mutcon_traces::stats::summarize(&trace);
//! assert_eq!(summary.updates, 113); // Table 2: CNN/FN has 113 updates
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod generator;
pub mod io;
pub mod json;
pub mod model;
pub mod stats;
pub mod transform;

pub use catalog::NamedTrace;
pub use model::{UpdateEvent, UpdateTrace};
