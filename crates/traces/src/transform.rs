//! Trace transformations: time compression, shifting, windowing.
//!
//! The live proxy (`mutcon-live`) replays the multi-day catalog traces in
//! seconds by compressing their timeline; experiments slice traces into
//! windows to study particular stretches (e.g. Figure 8's 2500–5000 s
//! span).

use mutcon_core::time::{Duration, Timestamp};

use crate::model::{TraceError, UpdateEvent, UpdateTrace};

/// Scales the trace's timeline by `factor` (e.g. `0.001` replays a
/// ~50-hour trace in ~3 minutes). Event spacing is compressed or
/// stretched relative to the trace start; colliding events after heavy
/// compression are nudged apart by one millisecond, extending the window
/// if the nudges run past its end.
///
/// # Errors
///
/// Returns [`TraceError::InvalidWindow`] if `factor` is not positive and
/// finite.
pub fn scale_time(trace: &UpdateTrace, factor: f64) -> Result<UpdateTrace, TraceError> {
    if !(factor.is_finite() && factor > 0.0) {
        return Err(TraceError::InvalidWindow);
    }
    let start = trace.start();
    let scale = |t: Timestamp| -> Timestamp {
        let rel = t.since(start).as_millis() as f64 * factor;
        start + Duration::from_millis(rel.round() as u64)
    };
    let mut new_end = scale(trace.end());
    let mut events: Vec<UpdateEvent> = trace
        .events()
        .iter()
        .map(|e| UpdateEvent {
            at: scale(e.at),
            value: e.value,
        })
        .collect();
    // Restore strict monotonicity lost to rounding.
    for i in 1..events.len() {
        if events[i].at <= events[i - 1].at {
            events[i].at = events[i - 1].at + Duration::from_millis(1);
        }
    }
    if let Some(last) = events.last() {
        new_end = new_end.max(last.at);
    }
    UpdateTrace::new(trace.name().to_owned(), start, new_end, events)
}

/// Shifts the whole trace later by `offset`.
pub fn shift(trace: &UpdateTrace, offset: Duration) -> UpdateTrace {
    let events = trace
        .events()
        .iter()
        .map(|e| UpdateEvent {
            at: e.at + offset,
            value: e.value,
        })
        .collect();
    UpdateTrace::new(
        trace.name().to_owned(),
        trace.start() + offset,
        trace.end() + offset,
        events,
    )
    .expect("shifting preserves all invariants")
}

/// Restricts the trace to `[from, to]`, carrying the version current at
/// `from` in as the window's initial version (re-stamped at `from`).
///
/// # Errors
///
/// Returns [`TraceError::InvalidWindow`] if the window is inverted or
/// outside the trace, or [`TraceError::Empty`] if no version exists at
/// `from` (window opens before the object's first version).
pub fn window(trace: &UpdateTrace, from: Timestamp, to: Timestamp) -> Result<UpdateTrace, TraceError> {
    if to < from || from < trace.start() || to > trace.end() {
        return Err(TraceError::InvalidWindow);
    }
    let initial = trace.event_at(from).ok_or(TraceError::Empty)?;
    let mut events = vec![UpdateEvent {
        at: from,
        value: initial.value,
    }];
    events.extend(trace.events_between(from, to).iter().copied());
    UpdateTrace::new(format!("{}[{from}..{to}]", trace.name()), from, to, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutcon_core::value::Value;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn t() -> UpdateTrace {
        UpdateTrace::new(
            "x",
            secs(0),
            secs(1_000),
            vec![
                UpdateEvent::valued(secs(0), Value::new(1.0)),
                UpdateEvent::valued(secs(100), Value::new(2.0)),
                UpdateEvent::valued(secs(500), Value::new(3.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scale_compresses() {
        let scaled = scale_time(&t(), 0.1).unwrap();
        assert_eq!(scaled.duration(), Duration::from_secs(100));
        assert_eq!(scaled.events()[1].at, secs(10));
        assert_eq!(scaled.events()[2].at, secs(50));
        assert_eq!(scaled.update_count(), 2);
        assert_eq!(scaled.events()[2].value, Some(Value::new(3.0)));
    }

    #[test]
    fn scale_stretches() {
        let scaled = scale_time(&t(), 2.0).unwrap();
        assert_eq!(scaled.duration(), Duration::from_secs(2_000));
        assert_eq!(scaled.events()[1].at, secs(200));
    }

    #[test]
    fn heavy_compression_keeps_strict_order() {
        let scaled = scale_time(&t(), 1e-6).unwrap();
        for w in scaled.events().windows(2) {
            assert!(w[1].at > w[0].at);
        }
    }

    #[test]
    fn scale_rejects_bad_factor() {
        assert!(scale_time(&t(), 0.0).is_err());
        assert!(scale_time(&t(), -1.0).is_err());
        assert!(scale_time(&t(), f64::NAN).is_err());
    }

    #[test]
    fn shift_moves_everything() {
        let shifted = shift(&t(), Duration::from_secs(50));
        assert_eq!(shifted.start(), secs(50));
        assert_eq!(shifted.end(), secs(1_050));
        assert_eq!(shifted.events()[1].at, secs(150));
        assert_eq!(shifted.duration(), t().duration());
    }

    #[test]
    fn window_carries_current_version() {
        let w = window(&t(), secs(200), secs(600)).unwrap();
        assert_eq!(w.start(), secs(200));
        assert_eq!(w.end(), secs(600));
        // Initial version: the value current at 200s (2.0), re-stamped.
        assert_eq!(w.events()[0].at, secs(200));
        assert_eq!(w.events()[0].value, Some(Value::new(2.0)));
        // Plus the update at 500s.
        assert_eq!(w.update_count(), 1);
        assert_eq!(w.events()[1].at, secs(500));
    }

    #[test]
    fn window_validation() {
        assert!(window(&t(), secs(600), secs(200)).is_err());
        assert!(window(&t(), secs(0), secs(2_000)).is_err());
        // Window starting exactly at an event keeps that event as initial.
        let w = window(&t(), secs(100), secs(1_000)).unwrap();
        assert_eq!(w.events()[0].value, Some(Value::new(2.0)));
        assert_eq!(w.update_count(), 1);
    }
}
