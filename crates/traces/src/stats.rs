//! Trace statistics: table summaries and time-windowed update counts.
//!
//! [`summarize`] produces the rows of Tables 2 and 3;
//! [`updates_per_window`] produces the update-frequency timeline of
//! Figure 4(a); [`rate_ratio_timeline`] the frequency-ratio curve of
//! Figure 6(a).


use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;

use crate::model::UpdateTrace;

/// Summary statistics of one trace — one row of Table 2 or Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Trace name.
    pub name: String,
    /// Window length.
    pub duration: Duration,
    /// Number of updates (excluding the initial version).
    pub updates: usize,
    /// `duration / updates` — the "Avg. Update Frequency" column.
    pub mean_update_gap: Option<Duration>,
    /// Min/max value, for valued traces.
    pub value_range: Option<(Value, Value)>,
}

/// Summarizes a trace.
pub fn summarize(trace: &UpdateTrace) -> TraceSummary {
    let updates = trace.update_count();
    TraceSummary {
        name: trace.name().to_owned(),
        duration: trace.duration(),
        updates,
        mean_update_gap: (updates > 0).then(|| trace.duration() / updates as u64),
        value_range: trace.value_range(),
    }
}

/// Update count within one window of a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCount {
    /// Window start.
    pub start: Timestamp,
    /// Updates with `start < at ≤ start + window` (the initial version is
    /// not an update).
    pub count: u32,
}

/// Counts updates per fixed window across the trace (Figure 4(a) uses
/// two-hour windows).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn updates_per_window(trace: &UpdateTrace, window: Duration) -> Vec<WindowCount> {
    assert!(!window.is_zero(), "window must be positive");
    let mut out = Vec::new();
    let mut cursor = trace.start();
    while cursor < trace.end() {
        let window_end = (cursor + window).min(trace.end());
        // events_between is exclusive of `cursor`, so the initial version
        // at the trace start is never miscounted as an update.
        let count = trace.events_between(cursor, window_end).len() as u32;
        out.push(WindowCount {
            start: cursor,
            count,
        });
        cursor += window;
    }
    out
}

/// Ratio of update frequencies of two traces per window (Figure 6(a)):
/// `count_a / count_b`, or `None` where `b` had no updates.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn rate_ratio_timeline(
    a: &UpdateTrace,
    b: &UpdateTrace,
    window: Duration,
) -> Vec<(Timestamp, Option<f64>)> {
    let wa = updates_per_window(a, window);
    let wb = updates_per_window(b, window);
    wa.into_iter()
        .zip(wb)
        .map(|(ca, cb)| {
            let ratio = (cb.count > 0).then(|| ca.count as f64 / cb.count as f64);
            (ca.start, ratio)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UpdateEvent;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn make(name: &str, updates: &[u64]) -> UpdateTrace {
        let mut events = vec![UpdateEvent::temporal(secs(0))];
        events.extend(updates.iter().map(|&s| UpdateEvent::temporal(secs(s))));
        UpdateTrace::new(name, secs(0), secs(100), events).unwrap()
    }

    #[test]
    fn summary_of_temporal_trace() {
        let t = make("x", &[10, 20, 50, 90]);
        let s = summarize(&t);
        assert_eq!(s.name, "x");
        assert_eq!(s.updates, 4);
        assert_eq!(s.mean_update_gap, Some(Duration::from_secs(25)));
        assert_eq!(s.value_range, None);
    }

    #[test]
    fn summary_of_empty_update_trace() {
        let t = make("quiet", &[]);
        let s = summarize(&t);
        assert_eq!(s.updates, 0);
        assert_eq!(s.mean_update_gap, None);
    }

    #[test]
    fn windows_partition_updates() {
        let t = make("x", &[10, 20, 50, 90]);
        let w = updates_per_window(&t, Duration::from_secs(25));
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].count, 2); // 10, 20  (initial version at 0 excluded)
        assert_eq!(w[1].count, 1); // 50
        assert_eq!(w[2].count, 0);
        assert_eq!(w[3].count, 1); // 90
        let total: u32 = w.iter().map(|w| w.count).sum();
        assert_eq!(total as usize, t.update_count());
    }

    #[test]
    fn window_larger_than_trace() {
        let t = make("x", &[10]);
        let w = updates_per_window(&t, Duration::from_secs(1_000));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].count, 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let t = make("x", &[10]);
        let _ = updates_per_window(&t, Duration::ZERO);
    }

    #[test]
    fn ratio_timeline() {
        let a = make("a", &[5, 10, 30, 55]);
        let b = make("b", &[20, 60]);
        let r = rate_ratio_timeline(&a, &b, Duration::from_secs(50));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], (secs(0), Some(3.0))); // a: 5,10,30 vs b: 20
        assert_eq!(r[1], (secs(50), Some(1.0))); // a: 55 vs b: 60
        // Division by zero reported as None.
        let quiet = make("q", &[]);
        let r = rate_ratio_timeline(&a, &quiet, Duration::from_secs(50));
        assert_eq!(r[0].1, None);
    }
}
