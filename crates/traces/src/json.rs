//! A minimal from-scratch JSON value model, parser and writer.
//!
//! The workspace builds offline, so trace JSON persistence cannot lean on
//! `serde_json`. This module implements the small subset the repo needs:
//! a [`Json`] value tree, a strict recursive-descent parser, and
//! `Display`-based writing. Numbers are `f64` (written with Rust's
//! shortest-round-trip formatting, so values survive a round trip
//! bit-for-bit); strings support the standard escapes.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), so output is canonical.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Error produced when text is not valid JSON (for this parser's subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for trace
                            // names; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the whole character through.
                _ if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(b as char);
                }
                _ => {
                    // Find the full UTF-8 character starting at pos-1.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Number(n))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Writes a string with JSON escaping into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => write!(f, "{n}"),
            Json::String(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let doc = parse(r#" {"a": [1, 2, null], "b": {"c": "x"}} "#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(doc.get("a").unwrap().as_array().unwrap()[2].is_null());
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("a\"b\\c\nd\te\u{1F980}é".into());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Json::String("Aé".into()));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, 36.15, -1.0e-12, 1.7976931348623157e308, 0.1 + 0.2] {
            let text = Json::Number(n).to_string();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(n), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "nul", "\"unterminated", "{\"a\" 1}", "1 2",
            "{\"a\":}", "[1,]", "\"\\q\"", "NaN", "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(!parse("{").unwrap_err().to_string().is_empty());
    }

    #[test]
    fn accessors() {
        assert_eq!(Json::Number(7.0).as_u64(), Some(7));
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::Number(1.5).as_u64(), None);
        assert_eq!(Json::Null.as_f64(), None);
        assert_eq!(Json::Null.as_str(), None);
        assert_eq!(Json::Null.as_array(), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
