// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests of the trace model, generators, codecs and
//! transforms.

use proptest::prelude::*;

use mutcon_core::time::{Duration, Timestamp};
use mutcon_traces::generator::{DiurnalProfile, NewsTraceBuilder, StockTraceBuilder};
use mutcon_traces::io::{from_tsv, to_tsv};
use mutcon_traces::stats::updates_per_window;
use mutcon_traces::transform::{scale_time, shift, window};

proptest! {
    /// News generation hits the exact update count with strictly
    /// increasing events inside the window, for any seed/size/phase.
    #[test]
    fn news_generator_invariants(
        seed in any::<u64>(),
        updates in 0usize..300,
        hours in 1u64..100,
        start_hour in 0.0f64..24.0,
    ) {
        let trace = NewsTraceBuilder::new("prop", Duration::from_hours(hours), updates)
            .start_hour(start_hour)
            .seed(seed)
            .build()
            .expect("hour-scale windows always fit");
        prop_assert_eq!(trace.update_count(), updates);
        prop_assert_eq!(trace.events()[0].at, Timestamp::ZERO);
        for w in trace.events().windows(2) {
            prop_assert!(w[1].at > w[0].at);
        }
        prop_assert!(trace.events().last().expect("non-empty").at <= trace.end());
        // Windowed counts partition the updates.
        let total: u32 = updates_per_window(&trace, Duration::from_hours(2))
            .iter()
            .map(|w| w.count)
            .sum();
        prop_assert_eq!(total as usize, updates);
    }

    /// Stock generation stays inside the price band with the exact count.
    #[test]
    fn stock_generator_invariants(
        seed in any::<u64>(),
        updates in 1usize..500,
        mins in 10u64..300,
        lo in 1.0f64..200.0,
        width in 0.5f64..50.0,
    ) {
        let hi = lo + width;
        let trace = StockTraceBuilder::new("prop", Duration::from_mins(mins), updates, lo, hi)
            .seed(seed)
            .build()
            .expect("minute-scale windows always fit");
        prop_assert_eq!(trace.update_count(), updates);
        prop_assert!(trace.is_valued());
        let (min_v, max_v) = trace.value_range().expect("valued");
        prop_assert!(min_v.as_f64() >= lo - 1e-9);
        prop_assert!(max_v.as_f64() <= hi + 1e-9);
    }

    /// TSV encoding is lossless for generated traces.
    #[test]
    fn tsv_round_trips(seed in any::<u64>(), updates in 0usize..100) {
        let trace = StockTraceBuilder::new(
            "codec", Duration::from_mins(30), updates.max(1), 30.0, 40.0)
            .seed(seed)
            .build()
            .expect("valid parameters");
        let decoded = from_tsv(&to_tsv(&trace)).expect("own output decodes");
        prop_assert_eq!(decoded, trace);
    }

    /// Scaling preserves event count and order; shifting preserves gaps.
    #[test]
    fn transforms_preserve_structure(
        seed in any::<u64>(),
        updates in 1usize..80,
        factor in 0.01f64..10.0,
        offset_secs in 0u64..10_000,
    ) {
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(10), updates)
            .seed(seed)
            .build()
            .expect("valid parameters");

        let scaled = scale_time(&trace, factor).expect("positive factor");
        prop_assert_eq!(scaled.update_count(), updates);
        for w in scaled.events().windows(2) {
            prop_assert!(w[1].at > w[0].at);
        }

        let offset = Duration::from_secs(offset_secs);
        let shifted = shift(&trace, offset);
        prop_assert_eq!(shifted.duration(), trace.duration());
        for (a, b) in trace.events().iter().zip(shifted.events()) {
            prop_assert_eq!(b.at, a.at + offset);
            prop_assert_eq!(b.value, a.value);
        }
    }

    /// Windowing keeps exactly the in-window updates plus a correct
    /// initial version.
    #[test]
    fn windowing_is_consistent(
        seed in any::<u64>(),
        updates in 1usize..80,
        from_frac in 0.0f64..0.9,
        len_frac in 0.05f64..=1.0,
    ) {
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(10), updates)
            .seed(seed)
            .build()
            .expect("valid parameters");
        let total = trace.duration().as_millis() as f64;
        let from = Timestamp::from_millis((total * from_frac) as u64);
        let to = Timestamp::from_millis(
            ((total * (from_frac + len_frac)).min(total)) as u64);
        prop_assume!(to > from);

        let w = window(&trace, from, to).expect("window within trace");
        prop_assert_eq!(w.start(), from);
        prop_assert_eq!(w.end(), to);
        // Initial version matches the version current at `from`.
        prop_assert_eq!(w.events()[0].at, from);
        // Updates inside the window are exactly the original's.
        prop_assert_eq!(w.update_count(), trace.events_between(from, to).len());
        // Version lookups agree across the window interior.
        let mid = Timestamp::from_millis(
            (from.as_millis() + to.as_millis()) / 2);
        prop_assert_eq!(
            w.event_at(mid).map(|e| e.value),
            trace.event_at(mid).map(|e| e.value)
        );
    }

    /// Custom diurnal profiles: zero-weight hours never receive updates.
    #[test]
    fn diurnal_zero_hours_respected(seed in any::<u64>(), updates in 1usize..200) {
        // Only hours 8..16 active.
        let mut weights = [0.0f64; 24];
        for w in weights.iter_mut().take(16).skip(8) {
            *w = 1.0;
        }
        let profile = DiurnalProfile::from_weights(weights).expect("non-zero total");
        let trace = NewsTraceBuilder::new("t", Duration::from_hours(48), updates)
            .start_hour(0.0)
            .profile(profile)
            .seed(seed)
            .build()
            .expect("valid parameters");
        for e in &trace.events()[1..] {
            let hour = (e.at.as_millis() / 3_600_000) % 24;
            prop_assert!((8..16).contains(&hour), "update at hour {hour}");
        }
    }
}
