// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests of the core algorithm invariants.

use proptest::prelude::*;

use mutcon_core::adaptive_ttr::AdaptiveTtrConfig;
use mutcon_core::fidelity::FidelityStats;
use mutcon_core::functions::ValueFunction;
use mutcon_core::limd::{DecreaseFactor, Limd, LimdConfig, PollResult};
use mutcon_core::mutual::value::{PairMember, PartitionedConfig};
use mutcon_core::semantics::ValidityInterval;
use mutcon_core::time::{Duration, Timestamp};
use mutcon_core::value::Value;

/// An arbitrary-but-valid LIMD configuration.
fn limd_config_strategy() -> impl Strategy<Value = LimdConfig> {
    (
        1u64..=60,          // delta (minutes)
        0.01f64..0.9,       // l
        0.05f64..0.9,       // m
        0.0f64..0.2,        // epsilon
        61u64..=240,        // ttr_max (minutes)
    )
        .prop_map(|(delta, l, m, eps, ttr_max)| {
            LimdConfig::builder(Duration::from_mins(delta))
                .linear_increase(l)
                .decrease(DecreaseFactor::Fixed(m))
                .epsilon(eps)
                .ttr_max(Duration::from_mins(ttr_max))
                .build()
                .expect("strategy produces valid configurations")
        })
}

/// A poll sequence: (gap to next poll in minutes, age of modification in
/// minutes if modified).
fn poll_sequence_strategy() -> impl Strategy<Value = Vec<(u64, Option<u64>)>> {
    prop::collection::vec((1u64..=120, prop::option::of(0u64..=600)), 1..60)
}

proptest! {
    /// LIMD's TTR never leaves its configured bounds, whatever it sees.
    #[test]
    fn limd_ttr_always_within_bounds(
        config in limd_config_strategy(),
        polls in poll_sequence_strategy(),
    ) {
        let mut limd = Limd::new(config);
        let mut now = Timestamp::ZERO;
        let mut last_mod = Timestamp::ZERO;
        for (gap, modified) in polls {
            now += Duration::from_mins(gap);
            let result = match modified {
                None => PollResult::NotModified,
                Some(age) => {
                    // Last-modified must move forward in time.
                    let lm = now.saturating_sub(Duration::from_mins(age)).max(last_mod);
                    last_mod = lm;
                    PollResult::modified(lm)
                }
            };
            let decision = limd.on_poll(now, &result);
            prop_assert!(decision.ttr >= config.ttr_min());
            prop_assert!(decision.ttr <= config.ttr_max());
            prop_assert_eq!(decision.ttr, limd.current_ttr());
        }
    }

    /// The adaptive value TTR also respects its bounds on arbitrary walks.
    #[test]
    fn adaptive_ttr_within_bounds(
        delta in 0.05f64..5.0,
        w in 0.0f64..=1.0,
        alpha in 0.0f64..=1.0,
        steps in prop::collection::vec((1u64..=600, -5.0f64..5.0), 1..80),
    ) {
        let lo = Duration::from_secs(1);
        let hi = Duration::from_mins(30);
        let mut state = AdaptiveTtrConfig::builder(Value::new(delta))
            .smoothing(w)
            .alpha(alpha)
            .ttr_bounds(lo, hi)
            .build()
            .expect("valid configuration")
            .into_state();
        let mut now = Timestamp::ZERO;
        let mut value = 100.0f64;
        for (gap, step) in steps {
            now += Duration::from_secs(gap);
            value += step;
            let ttr = state.on_poll(now, Value::new(value));
            prop_assert!(ttr >= lo && ttr <= hi);
        }
    }

    /// Partitioned Mv: the weighted tolerance budget is preserved exactly
    /// and both member tolerances stay positive, across any poll pattern.
    #[test]
    fn partitioned_budget_invariant(
        delta in 0.1f64..10.0,
        wa in 0.5f64..3.0,
        wb in 0.5f64..3.0,
        polls in prop::collection::vec(
            (prop::bool::ANY, 1u64..=600, -2.0f64..2.0), 1..100),
    ) {
        let function = ValueFunction::WeightedSum { wa, wb };
        let mut policy = PartitionedConfig::builder(function, Value::new(delta))
            .repartition_every(4)
            .build()
            .expect("valid configuration")
            .into_policy();
        let mut now = Timestamp::ZERO;
        let (mut va, mut vb) = (100.0f64, 50.0f64);
        for (which, gap, step) in polls {
            now += Duration::from_secs(gap);
            let member = if which { PairMember::A } else { PairMember::B };
            let value = if which { va += step; va } else { vb += step; vb };
            policy.on_poll(member, now, Value::new(value));
            let (da, db) = policy.tolerances();
            prop_assert!(da > Value::ZERO && db > Value::ZERO);
            let budget = wa * da.as_f64() + wb * db.as_f64();
            prop_assert!((budget - delta).abs() < 1e-9,
                "budget {budget} drifted from δ {delta}");
        }
    }

    /// The partitioned split is sound: individual compliance implies the
    /// mutual bound (the triangle-inequality argument of §4.2).
    #[test]
    fn partitioned_split_implies_mutual_bound(
        delta in 0.1f64..10.0,
        frac in 0.05f64..0.95,
        sa in -100.0f64..100.0,
        sb in -100.0f64..100.0,
        // Per-object drifts strictly inside the respective tolerances.
        da_frac in 0.0f64..0.999,
        db_frac in 0.0f64..0.999,
        sign_a in prop::bool::ANY,
        sign_b in prop::bool::ANY,
    ) {
        let da = delta * frac;
        let db = delta - da;
        let drift_a = da * da_frac * if sign_a { 1.0 } else { -1.0 };
        let drift_b = db * db_frac * if sign_b { 1.0 } else { -1.0 };
        let (pa, pb) = (sa + drift_a, sb + drift_b);
        let f = ValueFunction::Difference;
        let server = f.eval(Value::new(sa), Value::new(sb));
        let proxy = f.eval(Value::new(pa), Value::new(pb));
        prop_assert!(server.abs_diff(proxy).as_f64() < delta);
    }

    /// Validity-interval gap is symmetric, and dilating by the gap makes
    /// intervals "touch": gap(a, b) ≤ δ ⇔ mutual_t_satisfied.
    #[test]
    fn validity_gap_properties(
        s1 in 0u64..10_000,
        l1 in 0u64..5_000,
        s2 in 0u64..10_000,
        l2 in 0u64..5_000,
        delta in 0u64..6_000,
    ) {
        let a = ValidityInterval::closed(
            Timestamp::from_secs(s1), Timestamp::from_secs(s1 + l1));
        let b = ValidityInterval::closed(
            Timestamp::from_secs(s2), Timestamp::from_secs(s2 + l2));
        prop_assert_eq!(a.gap(b), b.gap(a));
        let delta = Duration::from_secs(delta);
        prop_assert_eq!(
            mutcon_core::semantics::mutual_t_satisfied(a, b, delta),
            a.gap(b) <= delta
        );
        // Zero gap iff the closed intervals intersect (or touch).
        let intersect = s1 <= s2 + l2 && s2 <= s1 + l1;
        prop_assert_eq!(a.gap(b).is_zero(), intersect);
    }

    /// Fidelity metrics always land in [0, 1] and degrade monotonically
    /// with added violations.
    #[test]
    fn fidelity_bounds_and_monotonicity(
        polls in 1u64..1_000,
        violations in 0u64..1_200,
        out_sync_ms in 0u64..10_000_000,
        observed_ms in 1u64..10_000_000,
    ) {
        let mut stats = FidelityStats::new(Duration::from_millis(observed_ms));
        stats.record_polls(polls);
        for _ in 0..violations {
            stats.record_violation(Duration::ZERO);
        }
        stats.add_out_of_sync(Duration::from_millis(out_sync_ms));
        let fv = stats.fidelity_by_violations();
        let ft = stats.fidelity_by_time();
        prop_assert!((0.0..=1.0).contains(&fv));
        prop_assert!((0.0..=1.0).contains(&ft));
        // One more violation can only lower (or keep) the fidelity.
        let before = stats.fidelity_by_violations();
        stats.record_violation(Duration::ZERO);
        prop_assert!(stats.fidelity_by_violations() <= before);
    }
}
