//! Error types for the algorithm library.

use std::error::Error as StdError;
use std::fmt;

use crate::time::Duration;

/// Errors arising from invalid algorithm configuration or use.
///
/// All configuration constructors in this crate validate their arguments
/// ([C-VALIDATE]) and report failures through this type.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A parameter that must lie in an open or closed unit-style interval
    /// was outside it (e.g. the LIMD linear factor `l` must satisfy
    /// `0 < l < 1`).
    ParameterOutOfRange {
        /// Parameter name as it appears in the paper (e.g. `"l"`, `"m"`).
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the admissible range.
        range: &'static str,
    },
    /// `ttr_min` exceeded `ttr_max`.
    InvalidTtrBounds {
        /// Configured lower bound.
        min: Duration,
        /// Configured upper bound.
        max: Duration,
    },
    /// A tolerance (Δ or δ) that must be positive was zero.
    ZeroTolerance {
        /// Which tolerance was zero (`"delta"` for Δ, `"group delta"` for δ).
        name: &'static str,
    },
    /// A group of related objects needs at least two members.
    GroupTooSmall {
        /// Number of members supplied.
        len: usize,
    },
    /// A serialized configuration spec could not be parsed (see
    /// [`crate::limd::LimdConfig::from_spec`] and
    /// [`crate::mutual::temporal::MtPolicy`]'s `FromStr`).
    InvalidSpec {
        /// What was wrong with the spec text.
        message: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ParameterOutOfRange { name, value, range } => {
                write!(f, "parameter `{name}` = {value} outside required range {range}")
            }
            ConfigError::InvalidTtrBounds { min, max } => {
                write!(f, "ttr_min ({min}) exceeds ttr_max ({max})")
            }
            ConfigError::ZeroTolerance { name } => {
                write!(f, "tolerance `{name}` must be positive")
            }
            ConfigError::GroupTooSmall { len } => {
                write!(f, "a related-object group needs at least 2 members, got {len}")
            }
            ConfigError::InvalidSpec { message } => {
                write!(f, "invalid configuration spec: {message}")
            }
        }
    }
}

impl StdError for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ConfigError::ParameterOutOfRange {
            name: "l",
            value: 1.5,
            range: "(0, 1)",
        };
        assert!(e.to_string().contains('l'));
        assert!(e.to_string().contains("1.5"));

        let e = ConfigError::InvalidTtrBounds {
            min: Duration::from_mins(10),
            max: Duration::from_mins(1),
        };
        assert!(e.to_string().contains("ttr_min"));

        let e = ConfigError::ZeroTolerance { name: "delta" };
        assert!(e.to_string().contains("delta"));

        let e = ConfigError::GroupTooSmall { len: 1 };
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ConfigError>();
    }
}
