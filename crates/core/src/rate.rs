//! Rate estimation helpers shared by the adaptive algorithms.
//!
//! Two different "rates" appear in the paper:
//!
//! * the **update rate** of an object — how often the origin modifies it.
//!   The Mt heuristic (§3.2) compares update rates of related objects to
//!   decide which of them deserve a triggered poll. [`UpdateRateEstimator`]
//!   tracks an exponentially weighted moving average of inter-update
//!   intervals, fed by the `Last-Modified` stamps observed on polls.
//! * the **rate of change of a value** (§4.1, Figure 2) — the slope
//!   `r = |P_cur − P_prev| / (t_cur − t_prev)` used to extrapolate when the
//!   value will have drifted by Δ. [`ValueRateEstimator`] computes this
//!   instantaneous slope from consecutive samples.


use crate::time::{Duration, Timestamp};
use crate::value::Value;

/// EWMA estimator of an object's update rate, fed with the modification
/// times learned from successive polls.
///
/// ```
/// use mutcon_core::rate::UpdateRateEstimator;
/// use mutcon_core::time::Timestamp;
///
/// let mut est = UpdateRateEstimator::new(0.3);
/// est.observe_modification(Timestamp::from_mins(0));
/// est.observe_modification(Timestamp::from_mins(10));
/// est.observe_modification(Timestamp::from_mins(20));
/// // Roughly one update every 10 minutes.
/// let per_min = est.rate_per_ms().unwrap() * 60_000.0;
/// assert!((per_min - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRateEstimator {
    /// Weight of the newest interval in the EWMA, in `(0, 1]`.
    alpha: f64,
    last_update: Option<Timestamp>,
    mean_interval_ms: Option<f64>,
}

impl UpdateRateEstimator {
    /// Creates an estimator whose EWMA gives weight `alpha` to the newest
    /// inter-update interval.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA weight must be in (0, 1], got {alpha}"
        );
        UpdateRateEstimator {
            alpha,
            last_update: None,
            mean_interval_ms: None,
        }
    }

    /// Records that the object was (last) modified at `at`.
    ///
    /// Feeding the same modification time twice is harmless: repeated and
    /// out-of-order stamps are ignored, so callers can simply report every
    /// `Last-Modified` value they see.
    pub fn observe_modification(&mut self, at: Timestamp) {
        match self.last_update {
            None => self.last_update = Some(at),
            Some(prev) if at > prev => {
                let interval = at.since(prev).as_millis() as f64;
                self.mean_interval_ms = Some(match self.mean_interval_ms {
                    None => interval,
                    Some(mean) => self.alpha * interval + (1.0 - self.alpha) * mean,
                });
                self.last_update = Some(at);
            }
            Some(_) => {} // duplicate or stale information
        }
    }

    /// Estimated updates per millisecond, or `None` before two distinct
    /// modifications have been observed.
    pub fn rate_per_ms(&self) -> Option<f64> {
        self.mean_interval_ms.map(|mean| {
            debug_assert!(mean > 0.0);
            1.0 / mean
        })
    }

    /// Estimated mean inter-update interval.
    pub fn mean_interval(&self) -> Option<Duration> {
        self.mean_interval_ms
            .map(|ms| Duration::from_millis(ms.round() as u64))
    }

    /// The most recent modification time observed.
    pub fn last_modification(&self) -> Option<Timestamp> {
        self.last_update
    }
}

/// Instantaneous value slope from consecutive samples (§4.1, Figure 2):
/// `r = |P_cur − P_prev| / (t_cur − t_prev)`, in value units per
/// millisecond.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValueRateEstimator {
    prev: Option<(Timestamp, Value)>,
}

impl ValueRateEstimator {
    /// Creates an estimator with no history.
    pub fn new() -> Self {
        ValueRateEstimator::default()
    }

    /// Records a sample and returns the slope versus the previous sample,
    /// or `None` on the first sample or when time has not advanced.
    pub fn observe(&mut self, at: Timestamp, value: Value) -> Option<f64> {
        let rate = match self.prev {
            Some((t_prev, v_prev)) if at > t_prev => {
                let dv = value.abs_diff(v_prev).as_f64();
                let dt = at.since(t_prev).as_millis() as f64;
                Some(dv / dt)
            }
            _ => None,
        };
        self.prev = Some((at, value));
        rate
    }

    /// The most recent sample.
    pub fn last_sample(&self) -> Option<(Timestamp, Value)> {
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_rate_needs_two_points() {
        let mut est = UpdateRateEstimator::new(0.5);
        assert_eq!(est.rate_per_ms(), None);
        est.observe_modification(Timestamp::from_secs(10));
        assert_eq!(est.rate_per_ms(), None);
        assert_eq!(est.last_modification(), Some(Timestamp::from_secs(10)));
        est.observe_modification(Timestamp::from_secs(20));
        let r = est.rate_per_ms().unwrap();
        assert!((r - 1.0 / 10_000.0).abs() < 1e-12);
        assert_eq!(est.mean_interval(), Some(Duration::from_secs(10)));
    }

    #[test]
    fn update_rate_ignores_duplicates_and_stale() {
        let mut est = UpdateRateEstimator::new(0.5);
        est.observe_modification(Timestamp::from_secs(10));
        est.observe_modification(Timestamp::from_secs(10));
        est.observe_modification(Timestamp::from_secs(5));
        assert_eq!(est.rate_per_ms(), None);
        est.observe_modification(Timestamp::from_secs(30));
        assert_eq!(est.mean_interval(), Some(Duration::from_secs(20)));
    }

    #[test]
    fn update_rate_ewma_blends() {
        let mut est = UpdateRateEstimator::new(0.5);
        est.observe_modification(Timestamp::from_secs(0));
        est.observe_modification(Timestamp::from_secs(10)); // mean = 10s
        est.observe_modification(Timestamp::from_secs(40)); // newest = 30s
        // mean = 0.5*30 + 0.5*10 = 20s
        assert_eq!(est.mean_interval(), Some(Duration::from_secs(20)));
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn update_rate_rejects_bad_alpha() {
        let _ = UpdateRateEstimator::new(0.0);
    }

    #[test]
    fn value_rate_slope() {
        let mut est = ValueRateEstimator::new();
        assert_eq!(est.observe(Timestamp::from_secs(0), Value::new(100.0)), None);
        let r = est
            .observe(Timestamp::from_secs(10), Value::new(105.0))
            .unwrap();
        // 5 units over 10_000 ms.
        assert!((r - 0.0005).abs() < 1e-12);
        // Direction does not matter: rate uses |Δv|.
        let r = est
            .observe(Timestamp::from_secs(20), Value::new(100.0))
            .unwrap();
        assert!((r - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn value_rate_requires_time_advance() {
        let mut est = ValueRateEstimator::new();
        est.observe(Timestamp::from_secs(1), Value::new(1.0));
        assert_eq!(est.observe(Timestamp::from_secs(1), Value::new(2.0)), None);
        assert_eq!(est.last_sample(), Some((Timestamp::from_secs(1), Value::new(2.0))));
    }
}
