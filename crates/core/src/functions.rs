//! The function `f` over pairs of object values that Mv-consistency bounds
//! (§2, Equation 5; §4.2).
//!
//! Mv-consistency requires `|f(S_a, S_b) − f(P_a, P_b)| < δ` for a
//! user-chosen `f` — e.g. the *difference* of two stock prices when the
//! user asks whether one outperforms the other by more than δ.
//!
//! When `f` decomposes additively (difference, sum, weighted sum), §4.2
//! shows the problem reduces to individual Δv-consistency: pick per-object
//! tolerances δ_a, δ_b with `w_a·δ_a + w_b·δ_b = δ` and the triangle
//! inequality guarantees the mutual bound. [`ValueFunction::lipschitz_weights`]
//! exposes the coefficients `w_a, w_b` that make that sound, or `None` for
//! functions (like [`ValueFunction::Ratio`]) where no such static split
//! exists and the virtual-object approach must be used.


use crate::value::Value;

/// A binary function over object values for Mv-consistency.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ValueFunction {
    /// `f(a, b) = a − b` — the paper's running example (comparing two
    /// stock prices).
    Difference,
    /// `f(a, b) = a + b` — e.g. the sum of individual scores versus a
    /// total.
    Sum,
    /// `f(a, b) = w_a·a + w_b·b` — e.g. a two-component index.
    WeightedSum {
        /// Weight of the first object.
        wa: f64,
        /// Weight of the second object.
        wb: f64,
    },
    /// `f(a, b) = a / b` — nonlinear; no static tolerance split exists, so
    /// only the virtual-object approach applies.
    Ratio,
}

impl ValueFunction {
    /// Evaluates the function.
    ///
    /// For [`ValueFunction::Ratio`] with `b == 0`, the result saturates to
    /// zero rather than dividing by zero (cached financial data never has
    /// an exactly-zero denominator in practice; the guard keeps the type's
    /// no-NaN invariant).
    pub fn eval(self, a: Value, b: Value) -> Value {
        match self {
            ValueFunction::Difference => a - b,
            ValueFunction::Sum => a + b,
            ValueFunction::WeightedSum { wa, wb } => {
                Value::new(wa * a.as_f64() + wb * b.as_f64())
            }
            ValueFunction::Ratio => {
                if b.as_f64() == 0.0 {
                    Value::ZERO
                } else {
                    a / b
                }
            }
        }
    }

    /// Per-object Lipschitz coefficients `(w_a, w_b)` such that
    /// `|f(S_a,S_b) − f(P_a,P_b)| ≤ w_a·|S_a−P_a| + w_b·|S_b−P_b|`,
    /// or `None` when the function admits no such global decomposition.
    ///
    /// These are the weights the partitioned Mv approach (§4.2) must
    /// respect when splitting δ: `w_a·δ_a + w_b·δ_b ≤ δ`.
    pub fn lipschitz_weights(self) -> Option<(f64, f64)> {
        match self {
            ValueFunction::Difference | ValueFunction::Sum => Some((1.0, 1.0)),
            ValueFunction::WeightedSum { wa, wb } => Some((wa.abs(), wb.abs())),
            ValueFunction::Ratio => None,
        }
    }

    /// Whether the partitioned approach is sound for this function.
    pub fn supports_partitioning(self) -> bool {
        self.lipschitz_weights().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation() {
        let a = Value::new(160.0);
        let b = Value::new(36.0);
        assert_eq!(ValueFunction::Difference.eval(a, b), Value::new(124.0));
        assert_eq!(ValueFunction::Sum.eval(a, b), Value::new(196.0));
        assert_eq!(
            ValueFunction::WeightedSum { wa: 0.5, wb: 2.0 }.eval(a, b),
            Value::new(152.0)
        );
        assert!((ValueFunction::Ratio.eval(a, b).as_f64() - 160.0 / 36.0).abs() < 1e-12);
        assert_eq!(ValueFunction::Ratio.eval(a, Value::ZERO), Value::ZERO);
    }

    #[test]
    fn partitioning_support() {
        assert!(ValueFunction::Difference.supports_partitioning());
        assert!(ValueFunction::Sum.supports_partitioning());
        assert!(ValueFunction::WeightedSum { wa: -2.0, wb: 1.0 }.supports_partitioning());
        assert!(!ValueFunction::Ratio.supports_partitioning());
        assert_eq!(
            ValueFunction::WeightedSum { wa: -2.0, wb: 1.0 }.lipschitz_weights(),
            Some((2.0, 1.0))
        );
    }

    #[test]
    fn lipschitz_bound_holds_for_difference() {
        // |f(S) − f(P)| ≤ |Sa−Pa| + |Sb−Pb| for the difference function.
        let cases = [
            (10.0, 9.0, 5.0, 5.5),
            (0.0, 1.0, 0.0, -1.0),
            (100.0, 99.5, 42.0, 41.0),
        ];
        for (sa, pa, sb, pb) in cases {
            let f = ValueFunction::Difference;
            let lhs = f
                .eval(Value::new(sa), Value::new(sb))
                .abs_diff(f.eval(Value::new(pa), Value::new(pb)))
                .as_f64();
            let rhs = (sa - pa).abs() + (sb - pb).abs();
            assert!(lhs <= rhs + 1e-12, "triangle inequality failed: {lhs} > {rhs}");
        }
    }
}
