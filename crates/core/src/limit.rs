//! Congestion-style adaptive concurrency limits, unified with LIMD.
//!
//! The paper's LIMD controller (§3.1, [`crate::limd`]) is AIMD-shaped: it
//! probes a poll interval upward linearly while the object looks stable and
//! backs off multiplicatively the moment consistency is violated. The very
//! same shape governs *concurrency* limits in production proxies: probe the
//! number of in-flight requests upward while latency looks healthy, back
//! off multiplicatively on overload. This module extracts that shared shape
//! into a [`LimitAlgorithm`] trait with three implementations:
//!
//! * [`Aimd`] — additive increase, multiplicative decrease, reusing the
//!   LIMD parameter names (`l` for the linear step, `m` for the decrease
//!   factor). Increase is gated on utilisation so an idle limiter does not
//!   drift toward its ceiling.
//! * [`Vegas`] — TCP-Vegas-style latency gradient: estimate the queue
//!   standing behind the observed latency relative to the best latency
//!   seen, grow while the queue is shallow, shrink when it is deep.
//! * [`WindowedGradient`] — aggregates samples into fixed-size windows and
//!   moves the limit by the ratio of a long-term latency baseline to the
//!   window's short-term average, with a √limit probe for headroom.
//!
//! All three are pure state machines: the caller feeds [`Sample`]s (one per
//! completed unit of work) through [`Limiter::on_sample`] and reads the
//! current limit back. Nothing here blocks, allocates per-sample, or knows
//! about sockets — the live proxy drives one limiter per origin pool and
//! one per path-partition from its reactor threads.
//!
//! Configurations serialize to a one-line `algorithm:key=value,...` spec
//! (mirroring [`crate::limd::LimdConfig::to_spec`]) so a control plane can
//! hot-swap the algorithm and its bounds over the wire.

use std::collections::VecDeque;
use std::fmt;

use crate::error::ConfigError;
use crate::time::Duration;

/// Floor for latency ratios: samples are millisecond-resolution, so a
/// sub-millisecond fetch reads as zero and would otherwise blow up the
/// Vegas/gradient division.
const MIN_LATENCY_MS: f64 = 0.5;

/// How one completed unit of work went, as far as the limiter cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The work completed normally; its latency is meaningful.
    Success,
    /// The work failed in a way that indicates pressure (timeout,
    /// connection error, shed) — the limiter should back off.
    Overload,
}

/// One observation fed to a [`LimitAlgorithm`].
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Concurrent units of work in flight when this one completed.
    pub in_flight: usize,
    /// Observed latency of this unit of work.
    pub latency: Duration,
    /// Whether it succeeded or signalled overload.
    pub outcome: Outcome,
}

impl Sample {
    /// Convenience constructor for a successful sample.
    pub fn success(in_flight: usize, latency: Duration) -> Self {
        Sample { in_flight, latency, outcome: Outcome::Success }
    }

    /// Convenience constructor for an overload sample.
    pub fn overload(in_flight: usize, latency: Duration) -> Self {
        Sample { in_flight, latency, outcome: Outcome::Overload }
    }
}

/// A concurrency-limit controller: maps (current limit, new sample) to the
/// next limit.
///
/// Implementations are deterministic given the sample sequence — the live
/// proxy's deterministic harness and the unit tests below rely on that.
pub trait LimitAlgorithm: fmt::Debug + Send {
    /// Feed one sample; returns the new limit (already clamped to the
    /// algorithm's configured bounds).
    fn update(&mut self, old_limit: usize, sample: &Sample) -> usize;
}

/// Clamps with the decrease-must-decrease rule shared by every algorithm:
/// floor (not round) before clamping, so the limit still shrinks at small
/// values instead of rounding back to where it was.
fn shrink(old_limit: usize, factor: f64, min: usize) -> usize {
    ((old_limit as f64 * factor).floor() as usize).clamp(min, old_limit)
}

// ---------------------------------------------------------------------------
// AIMD
// ---------------------------------------------------------------------------

/// Additive-increase / multiplicative-decrease concurrency limit — the
/// LIMD rule (§3.1) transplanted from poll intervals to in-flight work.
///
/// On [`Outcome::Success`] with the limit more than `utilisation` full,
/// the limit grows by `l`; an under-utilised limiter holds still (growing
/// a limit nobody is pressing against only delays the reaction when load
/// arrives). On [`Outcome::Overload`] the limit is multiplied by `m < 1`.
#[derive(Debug, Clone)]
pub struct Aimd {
    config: AimdConfig,
}

/// Configuration for [`Aimd`].
#[derive(Debug, Clone, PartialEq)]
pub struct AimdConfig {
    /// Inclusive lower bound for the limit.
    pub min: usize,
    /// Inclusive upper bound for the limit.
    pub max: usize,
    /// Additive step on healthy, utilised samples (LIMD's `l`).
    pub increase_by: usize,
    /// Multiplicative factor on overload, in `(0, 1)` (LIMD's `m`).
    pub decrease: f64,
    /// Utilisation gate in `(0, 1]`: grow only when
    /// `in_flight > limit * utilisation`.
    pub utilisation: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig { min: 1, max: 256, increase_by: 1, decrease: 0.75, utilisation: 0.8 }
    }
}

impl AimdConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        validate_bounds(self.min, self.max)?;
        if self.increase_by == 0 {
            return Err(ConfigError::InvalidSpec {
                message: "aimd `l` (increase step) must be >= 1".into(),
            });
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "m",
                value: self.decrease,
                range: "0 < m < 1",
            });
        }
        if !(self.utilisation > 0.0 && self.utilisation <= 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "util",
                value: self.utilisation,
                range: "0 < util <= 1",
            });
        }
        Ok(())
    }
}

impl Aimd {
    /// Builds an AIMD limiter, validating the configuration.
    pub fn new(config: AimdConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Aimd { config })
    }
}

impl LimitAlgorithm for Aimd {
    fn update(&mut self, old_limit: usize, sample: &Sample) -> usize {
        let c = &self.config;
        match sample.outcome {
            Outcome::Success => {
                let utilised = sample.in_flight as f64 > old_limit as f64 * c.utilisation;
                if utilised {
                    old_limit.saturating_add(c.increase_by).clamp(c.min, c.max)
                } else {
                    old_limit.clamp(c.min, c.max)
                }
            }
            Outcome::Overload => shrink(old_limit, c.decrease, c.min),
        }
    }
}

// ---------------------------------------------------------------------------
// Vegas
// ---------------------------------------------------------------------------

/// TCP-Vegas-style latency-gradient limit.
///
/// Tracks the best latency seen (`base`, an estimate of the uncongested
/// service time) and, per sample, estimates the queue the current limit is
/// sustaining: `queue = limit * (1 - base/observed)`. A shallow queue
/// (`< alpha`) means there is headroom — grow additively. A deep queue
/// (`> beta`) means the extra in-flight work is only sitting in line —
/// shrink multiplicatively. In between, hold. Overload outcomes shrink
/// regardless of latency.
#[derive(Debug, Clone)]
pub struct Vegas {
    config: VegasConfig,
    /// Best latency observed, decayed slowly so a route change or origin
    /// restart cannot pin the baseline to an unreachable past.
    base_ms: Option<f64>,
}

/// Configuration for [`Vegas`].
#[derive(Debug, Clone, PartialEq)]
pub struct VegasConfig {
    /// Inclusive lower bound for the limit.
    pub min: usize,
    /// Inclusive upper bound for the limit.
    pub max: usize,
    /// Queue depth below which the limit grows.
    pub alpha: f64,
    /// Queue depth above which the limit shrinks.
    pub beta: f64,
    /// Multiplicative factor applied when shrinking, in `(0, 1)`.
    pub decrease: f64,
}

impl Default for VegasConfig {
    fn default() -> Self {
        VegasConfig { min: 1, max: 256, alpha: 3.0, beta: 6.0, decrease: 0.85 }
    }
}

impl VegasConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        validate_bounds(self.min, self.max)?;
        if !(self.alpha >= 0.0 && self.beta > self.alpha) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "alpha",
                value: self.alpha,
                range: "0 <= alpha < beta",
            });
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "m",
                value: self.decrease,
                range: "0 < m < 1",
            });
        }
        Ok(())
    }
}

impl Vegas {
    /// Builds a Vegas limiter, validating the configuration.
    pub fn new(config: VegasConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Vegas { config, base_ms: None })
    }
}

impl LimitAlgorithm for Vegas {
    fn update(&mut self, old_limit: usize, sample: &Sample) -> usize {
        let c = &self.config;
        if sample.outcome == Outcome::Overload {
            // An error sample carries no usable latency; back off and keep
            // the baseline as-is.
            return shrink(old_limit, c.decrease, c.min);
        }
        let observed = (sample.latency.as_millis() as f64).max(MIN_LATENCY_MS);
        let base = match self.base_ms {
            // Decay the floor ~1% per sample so the baseline can re-learn
            // upward after a genuine service-time change.
            Some(b) => (b * 1.01).min(observed).max(MIN_LATENCY_MS),
            None => observed,
        };
        self.base_ms = Some(base);
        let queue = old_limit as f64 * (1.0 - base / observed);
        if queue < c.alpha {
            old_limit.saturating_add(1).clamp(c.min, c.max)
        } else if queue > c.beta {
            shrink(old_limit, c.decrease, c.min)
        } else {
            old_limit.clamp(c.min, c.max)
        }
    }
}

// ---------------------------------------------------------------------------
// Windowed gradient
// ---------------------------------------------------------------------------

/// Windowed latency-gradient limit.
///
/// Individual samples are noisy; this variant aggregates `window` samples,
/// then compares the window's average latency to a slow exponentially
/// smoothed baseline: `gradient = baseline / window_avg`, clamped to
/// `[0.5, 1.0]` so one bad window can at most halve the limit and a fast
/// window never inflates it beyond the √limit probe:
/// `new = gradient * limit + sqrt(limit)`. Overload samples poison the
/// window — when any are present the window resolves to a multiplicative
/// decrease instead.
#[derive(Debug, Clone)]
pub struct WindowedGradient {
    config: GradientConfig,
    /// Latencies (ms) of the current, still-filling window.
    window: VecDeque<f64>,
    /// Overload samples seen in the current window.
    window_overloads: usize,
    /// Slow EWMA of window averages — the "no congestion" reference.
    baseline_ms: Option<f64>,
}

/// Configuration for [`WindowedGradient`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradientConfig {
    /// Inclusive lower bound for the limit.
    pub min: usize,
    /// Inclusive upper bound for the limit.
    pub max: usize,
    /// Samples aggregated before the limit moves.
    pub window: usize,
    /// Baseline smoothing factor in `(0, 1)`: weight given to the newest
    /// window when updating the long-term baseline.
    pub smoothing: f64,
    /// Multiplicative factor applied when a window contains overloads.
    pub decrease: f64,
}

impl Default for GradientConfig {
    fn default() -> Self {
        GradientConfig { min: 1, max: 256, window: 16, smoothing: 0.2, decrease: 0.75 }
    }
}

impl GradientConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        validate_bounds(self.min, self.max)?;
        if self.window == 0 {
            return Err(ConfigError::InvalidSpec {
                message: "gradient `window` must be >= 1".into(),
            });
        }
        if !(self.smoothing > 0.0 && self.smoothing < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "smoothing",
                value: self.smoothing,
                range: "0 < smoothing < 1",
            });
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "m",
                value: self.decrease,
                range: "0 < m < 1",
            });
        }
        Ok(())
    }
}

impl WindowedGradient {
    /// Builds a windowed-gradient limiter, validating the configuration.
    pub fn new(config: GradientConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(WindowedGradient {
            config,
            window: VecDeque::new(),
            window_overloads: 0,
            baseline_ms: None,
        })
    }
}

impl LimitAlgorithm for WindowedGradient {
    fn update(&mut self, old_limit: usize, sample: &Sample) -> usize {
        let c = &self.config;
        match sample.outcome {
            Outcome::Success => {
                self.window
                    .push_back((sample.latency.as_millis() as f64).max(MIN_LATENCY_MS));
            }
            Outcome::Overload => self.window_overloads += 1,
        }
        if self.window.len() + self.window_overloads < c.window {
            return old_limit.clamp(c.min, c.max);
        }
        let overloaded = self.window_overloads > 0;
        let avg = if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        };
        self.window.clear();
        self.window_overloads = 0;
        if overloaded {
            return shrink(old_limit, c.decrease, c.min);
        }
        let avg = avg.expect("window resolved without samples or overloads");
        let baseline = match self.baseline_ms {
            Some(b) => b + c.smoothing * (avg - b),
            None => avg,
        };
        // The baseline must never learn congestion as the new normal
        // faster than it can recover, so it only smooths downward freely;
        // upward it is dragged by the same EWMA, which is fine — overload
        // windows are handled by the multiplicative branch above.
        self.baseline_ms = Some(baseline.min(avg.max(baseline * (1.0 - c.smoothing))));
        let gradient = (baseline / avg).clamp(0.5, 1.0);
        let probe = (old_limit as f64).sqrt();
        let next = (gradient * old_limit as f64 + probe).floor() as usize;
        next.clamp(c.min, c.max)
    }
}

fn validate_bounds(min: usize, max: usize) -> Result<(), ConfigError> {
    if min == 0 {
        return Err(ConfigError::InvalidSpec { message: "`min` must be >= 1".into() });
    }
    if max < min {
        return Err(ConfigError::InvalidSpec {
            message: format!("`max` ({max}) must be >= `min` ({min})"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Config enum + spec form (the hot-swappable wire shape)
// ---------------------------------------------------------------------------

/// A serializable choice of limit algorithm plus its parameters.
///
/// This is the form the live proxy's admin plane ships over the wire:
/// one line, `algorithm:key=value,...`, mirroring
/// [`crate::limd::LimdConfig::to_spec`]. Examples:
///
/// ```text
/// aimd:min=1,max=256,l=1,m=0.75,util=0.8
/// vegas:min=1,max=256,alpha=3,beta=6,m=0.85
/// gradient:min=1,max=256,window=16,smoothing=0.2,m=0.75
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LimiterConfig {
    /// Additive-increase / multiplicative-decrease ([`Aimd`]).
    Aimd(AimdConfig),
    /// Latency-gradient ([`Vegas`]).
    Vegas(VegasConfig),
    /// Windowed latency-gradient ([`WindowedGradient`]).
    Gradient(GradientConfig),
}

impl LimiterConfig {
    /// The configured inclusive lower bound.
    pub fn min(&self) -> usize {
        match self {
            LimiterConfig::Aimd(c) => c.min,
            LimiterConfig::Vegas(c) => c.min,
            LimiterConfig::Gradient(c) => c.min,
        }
    }

    /// The configured inclusive upper bound.
    pub fn max(&self) -> usize {
        match self {
            LimiterConfig::Aimd(c) => c.max,
            LimiterConfig::Vegas(c) => c.max,
            LimiterConfig::Gradient(c) => c.max,
        }
    }

    /// The algorithm's name as it appears at the head of the spec form.
    pub fn algorithm(&self) -> &'static str {
        match self {
            LimiterConfig::Aimd(_) => "aimd",
            LimiterConfig::Vegas(_) => "vegas",
            LimiterConfig::Gradient(_) => "gradient",
        }
    }

    /// Instantiates the configured algorithm.
    ///
    /// # Errors
    ///
    /// Returns the usual validation errors for out-of-range parameters.
    pub fn build(&self) -> Result<Box<dyn LimitAlgorithm>, ConfigError> {
        Ok(match self {
            LimiterConfig::Aimd(c) => Box::new(Aimd::new(c.clone())?),
            LimiterConfig::Vegas(c) => Box::new(Vegas::new(c.clone())?),
            LimiterConfig::Gradient(c) => Box::new(WindowedGradient::new(c.clone())?),
        })
    }

    /// Serializes to the one-line spec form; [`LimiterConfig::from_spec`]
    /// round-trips this exactly.
    pub fn to_spec(&self) -> String {
        match self {
            LimiterConfig::Aimd(c) => format!(
                "aimd:min={},max={},l={},m={},util={}",
                c.min, c.max, c.increase_by, c.decrease, c.utilisation
            ),
            LimiterConfig::Vegas(c) => format!(
                "vegas:min={},max={},alpha={},beta={},m={}",
                c.min, c.max, c.alpha, c.beta, c.decrease
            ),
            LimiterConfig::Gradient(c) => format!(
                "gradient:min={},max={},window={},smoothing={},m={}",
                c.min, c.max, c.window, c.smoothing, c.decrease
            ),
        }
    }

    /// Parses the spec form written by [`LimiterConfig::to_spec`]. Every
    /// key defaults as in the algorithm's `Default` config; unknown and
    /// duplicated keys are rejected (a typo must not silently fall back
    /// to a default).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidSpec`] for malformed text and the
    /// usual validation errors for out-of-range values.
    pub fn from_spec(spec: &str) -> Result<LimiterConfig, ConfigError> {
        fn bad(message: impl Into<String>) -> ConfigError {
            ConfigError::InvalidSpec { message: message.into() }
        }
        fn count(value: &str, key: &str) -> Result<usize, ConfigError> {
            value
                .parse::<usize>()
                .map_err(|_| bad(format!("`{key}` must be a non-negative integer")))
        }
        fn factor(value: &str, key: &str) -> Result<f64, ConfigError> {
            value.parse::<f64>().map_err(|_| bad(format!("`{key}` must be a number")))
        }

        let spec = spec.trim();
        let (name, params) = match spec.split_once(':') {
            Some((name, params)) => (name.trim(), params),
            None => (spec, ""),
        };
        let mut pairs: Vec<(String, String)> = Vec::new();
        for pair in params.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| bad(format!("`{pair}` is not a key=value pair")))?;
            let (key, value) = (key.trim(), value.trim());
            if pairs.iter().any(|(k, _)| k == key) {
                return Err(bad(format!("duplicate key `{key}`")));
            }
            pairs.push((key.to_owned(), value.to_owned()));
        }

        let config = match name {
            "aimd" => {
                let mut c = AimdConfig::default();
                for (key, value) in &pairs {
                    match key.as_str() {
                        "min" => c.min = count(value, key)?,
                        "max" => c.max = count(value, key)?,
                        "l" => c.increase_by = count(value, key)?,
                        "m" => c.decrease = factor(value, key)?,
                        "util" => c.utilisation = factor(value, key)?,
                        other => return Err(bad(format!("unknown aimd key `{other}`"))),
                    }
                }
                LimiterConfig::Aimd(c)
            }
            "vegas" => {
                let mut c = VegasConfig::default();
                for (key, value) in &pairs {
                    match key.as_str() {
                        "min" => c.min = count(value, key)?,
                        "max" => c.max = count(value, key)?,
                        "alpha" => c.alpha = factor(value, key)?,
                        "beta" => c.beta = factor(value, key)?,
                        "m" => c.decrease = factor(value, key)?,
                        other => return Err(bad(format!("unknown vegas key `{other}`"))),
                    }
                }
                LimiterConfig::Vegas(c)
            }
            "gradient" => {
                let mut c = GradientConfig::default();
                for (key, value) in &pairs {
                    match key.as_str() {
                        "min" => c.min = count(value, key)?,
                        "max" => c.max = count(value, key)?,
                        "window" => c.window = count(value, key)?,
                        "smoothing" => c.smoothing = factor(value, key)?,
                        "m" => c.decrease = factor(value, key)?,
                        other => return Err(bad(format!("unknown gradient key `{other}`"))),
                    }
                }
                LimiterConfig::Gradient(c)
            }
            other => {
                return Err(bad(format!(
                    "unknown algorithm `{other}` (expected aimd, vegas or gradient)"
                )))
            }
        };
        // Validate eagerly so a control plane learns about a bad spec at
        // PUT time, not when the limiter is first driven.
        config.build()?;
        Ok(config)
    }
}

// ---------------------------------------------------------------------------
// Limiter: algorithm + current limit, the unit both live users hold
// ---------------------------------------------------------------------------

/// An instantiated limit algorithm together with its current limit.
#[derive(Debug)]
pub struct Limiter {
    config: LimiterConfig,
    algorithm: Box<dyn LimitAlgorithm>,
    limit: usize,
}

impl Limiter {
    /// Builds a limiter starting at `initial` (clamped into the configured
    /// bounds).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation errors.
    pub fn new(config: LimiterConfig, initial: usize) -> Result<Self, ConfigError> {
        let algorithm = config.build()?;
        let limit = initial.clamp(config.min(), config.max());
        Ok(Limiter { config, algorithm, limit })
    }

    /// The current limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The configuration this limiter was built from.
    pub fn config(&self) -> &LimiterConfig {
        &self.config
    }

    /// Feeds one sample and returns the (possibly unchanged) new limit.
    pub fn on_sample(&mut self, sample: &Sample) -> usize {
        self.limit = self.algorithm.update(self.limit, sample);
        self.limit
    }

    /// Replaces the algorithm and bounds, carrying the current limit over
    /// (clamped into the new bounds) so a hot-swap does not reset learned
    /// state to a cold start.
    ///
    /// # Errors
    ///
    /// Returns the new configuration's validation errors; on error the
    /// existing algorithm keeps running untouched.
    pub fn reconfigure(&mut self, config: LimiterConfig) -> Result<(), ConfigError> {
        let algorithm = config.build()?;
        self.limit = self.limit.clamp(config.min(), config.max());
        self.config = config;
        self.algorithm = algorithm;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    /// Drives a limiter through a scripted trace of (in_flight, latency_ms,
    /// outcome) triples and returns the limit after each sample.
    fn run_trace(limiter: &mut Limiter, trace: &[(usize, u64, Outcome)]) -> Vec<usize> {
        trace
            .iter()
            .map(|&(in_flight, latency, outcome)| {
                limiter.on_sample(&Sample { in_flight, latency: ms(latency), outcome })
            })
            .collect()
    }

    #[test]
    fn aimd_grows_additively_under_utilised_success() {
        let mut l =
            Limiter::new(LimiterConfig::Aimd(AimdConfig::default()), 10).unwrap();
        // Fully utilised, healthy latency: +1 per sample.
        let limits = run_trace(
            &mut l,
            &[(10, 5, Outcome::Success), (11, 5, Outcome::Success), (12, 5, Outcome::Success)],
        );
        assert_eq!(limits, vec![11, 12, 13]);
    }

    #[test]
    fn aimd_holds_when_under_utilised() {
        let mut l =
            Limiter::new(LimiterConfig::Aimd(AimdConfig::default()), 100).unwrap();
        // 10 in flight against a limit of 100: no pressure, no growth.
        let limits = run_trace(&mut l, &[(10, 5, Outcome::Success); 5]);
        assert_eq!(limits, vec![100; 5]);
    }

    #[test]
    fn aimd_backs_off_multiplicatively_and_respects_min() {
        let mut l =
            Limiter::new(LimiterConfig::Aimd(AimdConfig::default()), 100).unwrap();
        assert_eq!(l.on_sample(&Sample::overload(100, ms(500))), 75);
        assert_eq!(l.on_sample(&Sample::overload(75, ms(500))), 56);
        // Repeated overloads converge to min, never 0.
        for _ in 0..40 {
            l.on_sample(&Sample::overload(1, ms(500)));
        }
        assert_eq!(l.limit(), 1);
    }

    #[test]
    fn aimd_decrease_makes_progress_at_small_limits() {
        // floor() rather than round(): 3 * 0.75 = 2.25 must become 2.
        let mut l = Limiter::new(LimiterConfig::Aimd(AimdConfig::default()), 3).unwrap();
        assert_eq!(l.on_sample(&Sample::overload(3, ms(500))), 2);
    }

    #[test]
    fn aimd_respects_max() {
        let config = AimdConfig { max: 12, ..AimdConfig::default() };
        let mut l = Limiter::new(LimiterConfig::Aimd(config), 10).unwrap();
        for i in 0..10 {
            l.on_sample(&Sample::success(10 + i, ms(5)));
        }
        assert_eq!(l.limit(), 12);
    }

    #[test]
    fn vegas_grows_while_latency_stays_at_baseline() {
        let mut l =
            Limiter::new(LimiterConfig::Vegas(VegasConfig::default()), 10).unwrap();
        // Flat 10ms latency: observed == base, queue estimate 0 < alpha.
        let limits = run_trace(&mut l, &[(10, 10, Outcome::Success); 20]);
        assert!(limits.windows(2).all(|w| w[1] >= w[0]), "{limits:?}");
        assert!(*limits.last().unwrap() > 10);
    }

    #[test]
    fn vegas_shrinks_when_latency_signals_queueing() {
        let mut l =
            Limiter::new(LimiterConfig::Vegas(VegasConfig::default()), 50).unwrap();
        // Establish a 10ms baseline...
        l.on_sample(&Sample::success(10, ms(10)));
        // ...then latency triples: queue ≈ 50 * (1 - 10/30) ≈ 33 > beta.
        let after = l.on_sample(&Sample::success(50, ms(30)));
        assert!(after < 50, "limit should shrink, got {after}");
    }

    #[test]
    fn vegas_converges_to_a_plateau_on_a_saturation_trace() {
        // Scripted saturation: past ~20 in flight the origin queues, and
        // latency grows with the limit. Vegas must settle, not oscillate
        // to the rails.
        let mut l =
            Limiter::new(LimiterConfig::Vegas(VegasConfig::default()), 4).unwrap();
        let mut seen = Vec::new();
        for _ in 0..200 {
            let limit = l.limit();
            let latency = if limit <= 20 { 10 } else { 10 + (limit as u64 - 20) * 2 };
            l.on_sample(&Sample::success(limit, ms(latency)));
            seen.push(l.limit());
        }
        let tail = &seen[seen.len() - 50..];
        let (lo, hi) = (tail.iter().min().unwrap(), tail.iter().max().unwrap());
        assert!(*lo >= 15 && *hi <= 60, "tail should plateau near the knee: {tail:?}");
    }

    #[test]
    fn vegas_backs_off_on_overload_outcome() {
        let mut l =
            Limiter::new(LimiterConfig::Vegas(VegasConfig::default()), 40).unwrap();
        assert_eq!(l.on_sample(&Sample::overload(40, ms(0))), 34);
    }

    #[test]
    fn gradient_holds_until_the_window_fills() {
        let config = GradientConfig { window: 4, ..GradientConfig::default() };
        let mut l = Limiter::new(LimiterConfig::Gradient(config), 10).unwrap();
        let limits = run_trace(&mut l, &[(10, 10, Outcome::Success); 3]);
        assert_eq!(limits, vec![10, 10, 10]);
    }

    #[test]
    fn gradient_probes_upward_on_a_flat_trace() {
        let config = GradientConfig { window: 4, ..GradientConfig::default() };
        let mut l = Limiter::new(LimiterConfig::Gradient(config), 16).unwrap();
        for _ in 0..8 {
            l.on_sample(&Sample::success(16, ms(10)));
        }
        // Two windows at the baseline: gradient 1.0, probe sqrt(16)=4.
        assert!(l.limit() > 16, "flat latency should probe upward, got {}", l.limit());
    }

    #[test]
    fn gradient_shrinks_on_a_latency_step() {
        let config = GradientConfig { window: 4, ..GradientConfig::default() };
        let mut l = Limiter::new(LimiterConfig::Gradient(config), 64).unwrap();
        // Baseline window at 10ms.
        for _ in 0..4 {
            l.on_sample(&Sample::success(64, ms(10)));
        }
        let before = l.limit();
        // Latency doubles for a full window: gradient clamps at 0.5.
        for _ in 0..4 {
            l.on_sample(&Sample::success(64, ms(40)));
        }
        assert!(l.limit() < before, "latency step must shrink: {} -> {}", before, l.limit());
    }

    #[test]
    fn gradient_treats_overloads_as_a_decrease_window() {
        let config =
            GradientConfig { window: 4, decrease: 0.5, ..GradientConfig::default() };
        let mut l = Limiter::new(LimiterConfig::Gradient(config), 40).unwrap();
        for _ in 0..3 {
            l.on_sample(&Sample::success(40, ms(10)));
        }
        assert_eq!(l.limit(), 40);
        l.on_sample(&Sample::overload(40, ms(0)));
        assert_eq!(l.limit(), 20);
    }

    #[test]
    fn spec_round_trips_every_algorithm() {
        let configs = [
            LimiterConfig::Aimd(AimdConfig { min: 2, max: 64, ..AimdConfig::default() }),
            LimiterConfig::Vegas(VegasConfig { alpha: 2.0, beta: 4.0, ..VegasConfig::default() }),
            LimiterConfig::Gradient(GradientConfig { window: 8, ..GradientConfig::default() }),
        ];
        for config in configs {
            let spec = config.to_spec();
            let back = LimiterConfig::from_spec(&spec)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(back, config, "{spec}");
        }
    }

    #[test]
    fn spec_defaults_and_whitespace() {
        assert_eq!(
            LimiterConfig::from_spec("aimd").unwrap(),
            LimiterConfig::Aimd(AimdConfig::default())
        );
        assert_eq!(
            LimiterConfig::from_spec(" vegas: alpha=2 , beta=5 ").unwrap(),
            LimiterConfig::Vegas(VegasConfig { alpha: 2.0, beta: 5.0, ..VegasConfig::default() })
        );
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in [
            "tcp",
            "aimd:bogus=1",
            "aimd:min",
            "aimd:min=1,min=2",
            "vegas:alpha=6,beta=3",
            "gradient:window=0",
            "aimd:min=0",
            "aimd:min=9,max=3",
            "aimd:m=1.5",
        ] {
            assert!(
                LimiterConfig::from_spec(bad).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn reconfigure_carries_the_limit_across_a_swap() {
        let mut l =
            Limiter::new(LimiterConfig::Aimd(AimdConfig::default()), 10).unwrap();
        for i in 0..30 {
            l.on_sample(&Sample::success(10 + i, ms(5)));
        }
        let learned = l.limit();
        assert!(learned > 10);
        l.reconfigure(LimiterConfig::Vegas(VegasConfig { max: learned - 5, ..VegasConfig::default() }))
            .unwrap();
        // Carried over, clamped into the new bounds — not reset to cold.
        assert_eq!(l.limit(), learned - 5);
    }
}
