//! Formal consistency semantics (§2 of the paper).
//!
//! The paper's taxonomy (Table 1) classifies cache-consistency guarantees
//! along two axes:
//!
//! | Semantics | Domain   | Scope      | Example |
//! |-----------|----------|------------|---------|
//! | Δt        | temporal | individual | object `a` is always within 5 time units of its server copy |
//! | Mt        | temporal | mutual     | objects `a` and `b` are never out-of-sync by more than 5 time units |
//! | Δv        | value    | individual | value of `a` is within 2.5 of its server copy |
//! | Mv        | value    | mutual     | difference in values of `a` and `b` is within 2.5 of the difference at the server |
//!
//! This module gives those definitions executable form. The central notion
//! is the [`ValidityInterval`] of a cached copy: the span of *server* time
//! during which the version held by the proxy was the current version at
//! the origin. Both temporal predicates are expressed over validity
//! intervals:
//!
//! * **Δt-consistency** (Equation 2): at every instant `t` the cached copy
//!   must equal the server state at some instant in `(t − Δ, t]` — i.e. the
//!   copy's validity interval must reach past `t − Δ`.
//! * **Mt-consistency** (Equation 4): the two cached copies must have been
//!   simultaneously valid at the server up to a tolerance δ — i.e. the gap
//!   between their validity intervals is at most δ. With δ = 0 the
//!   intervals must overlap ("the objects should have simultaneously
//!   existed on the server at some point in the past").
//!
//! Value-domain predicates compare numeric values directly (Equations 3
//! and 5).
//!
//! ```
//! use mutcon_core::semantics::{delta_t_satisfied, ValidityInterval};
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! // Cached version was current at the server during [0s, 60s).
//! let copy = ValidityInterval::closed(Timestamp::ZERO, Timestamp::from_secs(60));
//! let delta = Duration::from_secs(30);
//! // At t = 80s the copy is 20s stale: within Δ = 30s.
//! assert!(delta_t_satisfied(copy, Timestamp::from_secs(80), delta));
//! // At t = 95s it is 35s stale: Δ is violated.
//! assert!(!delta_t_satisfied(copy, Timestamp::from_secs(95), delta));
//! ```

use std::fmt;


use crate::time::{Duration, Timestamp};
use crate::value::Value;

/// The domain a consistency guarantee is expressed in (Table 1, column 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Guarantees bound *time* staleness (any web object qualifies).
    Temporal,
    /// Guarantees bound *value* drift (only objects with a numeric value).
    Value,
}

/// Whether a guarantee constrains one object or a group (Table 1, column 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// One cached object versus its server copy.
    Individual,
    /// A set of related cached objects versus one another.
    Mutual,
}

/// A consistency guarantee from the paper's taxonomy, with its tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Semantics {
    /// Strong consistency (Equation 1): the proxy is always up to date.
    /// Provided here for completeness; it needs no mutual augmentation.
    Strong,
    /// Δt-consistency with tolerance Δ (Equation 2).
    DeltaT(Duration),
    /// Mt-consistency with tolerance δ (Equation 4).
    MutualT(Duration),
    /// Δv-consistency with tolerance Δ (Equation 3).
    DeltaV(Value),
    /// Mv-consistency with tolerance δ (Equation 5).
    MutualV(Value),
}

impl Semantics {
    /// The domain of this guarantee; strong consistency spans both and
    /// reports [`Domain::Temporal`] (it is defined over versions).
    pub fn domain(self) -> Domain {
        match self {
            Semantics::Strong | Semantics::DeltaT(_) | Semantics::MutualT(_) => Domain::Temporal,
            Semantics::DeltaV(_) | Semantics::MutualV(_) => Domain::Value,
        }
    }

    /// The scope of this guarantee.
    pub fn scope(self) -> Scope {
        match self {
            Semantics::MutualT(_) | Semantics::MutualV(_) => Scope::Mutual,
            _ => Scope::Individual,
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Semantics::Strong => write!(f, "strong"),
            Semantics::DeltaT(d) => write!(f, "Δt({d})"),
            Semantics::MutualT(d) => write!(f, "Mt({d})"),
            Semantics::DeltaV(v) => write!(f, "Δv({v})"),
            Semantics::MutualV(v) => write!(f, "Mv({v})"),
        }
    }
}

/// The span of server time during which a cached version was the *current*
/// version at the origin: `[start, end)`, with `end = None` while the
/// version is still live.
///
/// `start` is the version's creation time (its `Last-Modified` instant);
/// `end` is the time of the next server update, once one occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValidityInterval {
    start: Timestamp,
    end: Option<Timestamp>,
}

impl ValidityInterval {
    /// An interval for a version that is still current at the server.
    pub fn open(start: Timestamp) -> Self {
        ValidityInterval { start, end: None }
    }

    /// An interval for a version superseded at `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn closed(start: Timestamp, end: Timestamp) -> Self {
        assert!(end >= start, "validity interval ends ({end}) before it starts ({start})");
        ValidityInterval {
            start,
            end: Some(end),
        }
    }

    /// When the version came into existence.
    pub fn start(self) -> Timestamp {
        self.start
    }

    /// When the version was superseded, or `None` if still current.
    pub fn end(self) -> Option<Timestamp> {
        self.end
    }

    /// `true` while the version is still the current one at the server.
    pub fn is_current(self) -> bool {
        self.end.is_none()
    }

    /// The smallest separation between some instant in `self` and some
    /// instant in `other` — zero when the intervals overlap or touch.
    ///
    /// This is the quantity bounded by δ in Mt-consistency: two cached
    /// versions are mutually consistent iff their validity intervals come
    /// within δ of each other.
    pub fn gap(self, other: ValidityInterval) -> Duration {
        // Treat each interval as [start, end], where a live version extends
        // to infinity. The gap is max(0, later.start − earlier.end).
        let (first, second) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        match first.end {
            None => Duration::ZERO, // first extends forever: they overlap
            Some(end) => second.start.checked_since(end).unwrap_or(Duration::ZERO),
        }
    }
}

impl fmt::Display for ValidityInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(end) => write!(f, "[{}, {})", self.start, end),
            None => write!(f, "[{}, now)", self.start),
        }
    }
}

/// Does a cached copy with validity interval `copy` satisfy Δt-consistency
/// with tolerance `delta` at instant `now`? (Equation 2.)
///
/// The copy satisfies the bound while its validity interval reaches past
/// `now − Δ`: some instant σ < Δ ago, the copy matched the server.
pub fn delta_t_satisfied(copy: ValidityInterval, now: Timestamp, delta: Duration) -> bool {
    match copy.end() {
        None => true, // still current: stale by 0
        // Valid until `end`; the copy matched the server as recently as
        // just before `end`, so staleness at `now` is `now − end`.
        Some(end) => now.checked_since(end).unwrap_or(Duration::ZERO) < delta,
    }
}

/// The instant at which Δt-consistency for `copy` *starts* being violated,
/// or `None` if the copy is still current (never violated).
///
/// A refresh strictly before this instant preserves the guarantee; this is
/// what a polling policy must beat.
pub fn delta_t_violation_onset(copy: ValidityInterval, delta: Duration) -> Option<Timestamp> {
    copy.end().map(|end| end.saturating_add(delta))
}

/// Do two cached copies satisfy Mt-consistency with tolerance `delta`?
/// (Equation 4.)
///
/// True when the copies' server-validity intervals come within `delta` of
/// each other; with `delta == 0` the versions must have coexisted at the
/// server.
pub fn mutual_t_satisfied(a: ValidityInterval, b: ValidityInterval, delta: Duration) -> bool {
    a.gap(b) <= delta
}

/// Does a cached value satisfy Δv-consistency with tolerance `delta`?
/// (Equation 3: `|S − P| < Δ`.)
pub fn delta_v_satisfied(server: Value, proxy: Value, delta: Value) -> bool {
    server.abs_diff(proxy) < delta
}

/// Do cached values satisfy Mv-consistency for a function with server-side
/// result `f_server` and proxy-side result `f_proxy`, with tolerance
/// `delta`? (Equation 5: `|f(S_a,S_b) − f(P_a,P_b)| < δ`.)
pub fn mutual_v_satisfied(f_server: Value, f_proxy: Value, delta: Value) -> bool {
    f_server.abs_diff(f_proxy) < delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn taxonomy_classification() {
        assert_eq!(Semantics::Strong.domain(), Domain::Temporal);
        assert_eq!(Semantics::Strong.scope(), Scope::Individual);
        let dt = Semantics::DeltaT(Duration::from_mins(5));
        assert_eq!((dt.domain(), dt.scope()), (Domain::Temporal, Scope::Individual));
        let mt = Semantics::MutualT(Duration::from_mins(5));
        assert_eq!((mt.domain(), mt.scope()), (Domain::Temporal, Scope::Mutual));
        let dv = Semantics::DeltaV(Value::new(2.5));
        assert_eq!((dv.domain(), dv.scope()), (Domain::Value, Scope::Individual));
        let mv = Semantics::MutualV(Value::new(2.5));
        assert_eq!((mv.domain(), mv.scope()), (Domain::Value, Scope::Mutual));
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::Strong.to_string(), "strong");
        assert_eq!(
            Semantics::DeltaT(Duration::from_mins(5)).to_string(),
            "Δt(5min)"
        );
        assert!(Semantics::MutualV(Value::new(2.5)).to_string().starts_with("Mv"));
    }

    #[test]
    fn current_copy_always_delta_t_consistent() {
        let copy = ValidityInterval::open(secs(0));
        assert!(delta_t_satisfied(copy, secs(1_000_000), Duration::from_millis(1)));
        assert_eq!(delta_t_violation_onset(copy, Duration::from_secs(1)), None);
    }

    #[test]
    fn superseded_copy_violates_after_delta() {
        // Version valid [0, 60); Δ = 30s → violation from t = 90s onwards.
        let copy = ValidityInterval::closed(secs(0), secs(60));
        let delta = Duration::from_secs(30);
        assert!(delta_t_satisfied(copy, secs(60), delta));
        assert!(delta_t_satisfied(copy, secs(89), delta));
        // At exactly end + Δ, staleness == Δ and Equation 2 requires σ < Δ.
        assert!(!delta_t_satisfied(copy, secs(90), delta));
        assert!(!delta_t_satisfied(copy, secs(200), delta));
        assert_eq!(delta_t_violation_onset(copy, delta), Some(secs(90)));
    }

    #[test]
    fn validity_gap_overlapping_is_zero() {
        let a = ValidityInterval::closed(secs(0), secs(50));
        let b = ValidityInterval::closed(secs(40), secs(90));
        assert_eq!(a.gap(b), Duration::ZERO);
        assert_eq!(b.gap(a), Duration::ZERO);
    }

    #[test]
    fn validity_gap_disjoint() {
        let a = ValidityInterval::closed(secs(0), secs(10));
        let b = ValidityInterval::closed(secs(25), secs(30));
        assert_eq!(a.gap(b), Duration::from_secs(15));
        assert_eq!(b.gap(a), Duration::from_secs(15));
    }

    #[test]
    fn validity_gap_with_open_interval() {
        let old = ValidityInterval::closed(secs(0), secs(10));
        let live = ValidityInterval::open(secs(25));
        assert_eq!(old.gap(live), Duration::from_secs(15));
        // Two live versions always overlap "now".
        let live2 = ValidityInterval::open(secs(1000));
        assert_eq!(live.gap(live2), Duration::ZERO);
        // A live version starting before a closed one overlaps it.
        let early_live = ValidityInterval::open(secs(0));
        assert_eq!(early_live.gap(old), Duration::ZERO);
    }

    #[test]
    fn mutual_t_zero_delta_requires_overlap() {
        let a = ValidityInterval::closed(secs(0), secs(10));
        let b = ValidityInterval::closed(secs(10), secs(20));
        // Intervals touch: the versions coexisted at instant 10 boundary
        // (gap 0), which Equation 4 admits for δ = 0.
        assert!(mutual_t_satisfied(a, b, Duration::ZERO));
        let c = ValidityInterval::closed(secs(11), secs(20));
        assert!(!mutual_t_satisfied(a, c, Duration::ZERO));
        assert!(mutual_t_satisfied(a, c, Duration::from_secs(1)));
    }

    #[test]
    fn value_predicates_are_strict() {
        let delta = Value::new(0.5);
        assert!(delta_v_satisfied(Value::new(10.0), Value::new(10.4), delta));
        assert!(!delta_v_satisfied(Value::new(10.0), Value::new(10.5), delta));
        assert!(mutual_v_satisfied(Value::new(124.0), Value::new(124.4), delta));
        assert!(!mutual_v_satisfied(Value::new(124.0), Value::new(125.0), delta));
    }

    #[test]
    #[should_panic(expected = "ends")]
    fn closed_interval_rejects_reversal() {
        let _ = ValidityInterval::closed(secs(10), secs(5));
    }

    #[test]
    fn interval_display() {
        assert_eq!(
            ValidityInterval::closed(secs(1), secs(2)).to_string(),
            "[t+1000ms, t+2000ms)"
        );
        assert_eq!(ValidityInterval::open(secs(1)).to_string(), "[t+1000ms, now)");
    }
}
