//! # mutcon-core — mutual consistency for cached web objects
//!
//! This crate implements the consistency semantics and adaptive polling
//! algorithms of *"Maintaining Mutual Consistency for Cached Web Objects"*
//! (Urgaonkar, Ninan, Raunak, Shenoy, Ramamritham — ICDCS 2001): the
//! primary contribution of the paper, independent of any particular proxy,
//! simulator or transport.
//!
//! ## The problem
//!
//! A web proxy keeps cached objects fresh with per-object ("individual")
//! consistency mechanisms, but *related* objects — a breaking-news story
//! and its photos, two stock quotes a user is comparing — must also stay
//! consistent **with one another**. The paper formalizes both kinds of
//! guarantee in two domains (see [`semantics`]):
//!
//! | | individual | mutual |
//! |---|---|---|
//! | **temporal** | Δt: copy ≤ Δ stale | Mt: copies originated ≤ δ apart |
//! | **value** | Δv: `\|S−P\| < Δ` | Mv: `\|f(S_a,S_b) − f(P_a,P_b)\| < δ` |
//!
//! ## The algorithms
//!
//! * [`limd`] — linear-increase multiplicative-decrease adaptation of the
//!   poll interval (TTR) for Δt-consistency (§3.1).
//! * [`adaptive_ttr`] — rate-extrapolating TTR computation for
//!   Δv-consistency (§4.1).
//! * [`mutual::temporal`] — Mt coordination: triggered polls and the
//!   update-rate heuristic (§3.2).
//! * [`mutual::value`] — Mv coordination: the virtual-object and
//!   partitioned-tolerance approaches (§4.2).
//! * [`fidelity`] — the two fidelity metrics of the evaluation (§6.1.3).
//! * [`limit`] — the LIMD/AIMD shape applied to concurrency limits
//!   (adaptive overload control for the live proxy).
//!
//! ## Quick start
//!
//! Maintain Δt-consistency for one object and react to what polls find:
//!
//! ```
//! use mutcon_core::limd::{Limd, LimdCase, LimdConfig, PollResult};
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! # fn main() -> Result<(), mutcon_core::error::ConfigError> {
//! let config = LimdConfig::builder(Duration::from_mins(10)).build()?;
//! let mut limd = Limd::new(config);
//!
//! let mut now = Timestamp::ZERO + limd.current_ttr();
//! // Poll #1: the object did not change → back off linearly.
//! let decision = limd.on_poll(now, &PollResult::NotModified);
//! assert_eq!(decision.case, LimdCase::Unchanged);
//!
//! // Poll #2 happens one TTR later and finds a recent update → in sync.
//! now += decision.ttr;
//! let result = PollResult::modified(now - Duration::from_mins(3));
//! let decision = limd.on_poll(now, &result);
//! assert_eq!(decision.case, LimdCase::InSync);
//! # Ok(())
//! # }
//! ```
//!
//! The sibling crates build the rest of the paper's system on top of this
//! one: `mutcon-sim` (event-driven simulation), `mutcon-traces`
//! (workloads), `mutcon-proxy` (the simulated proxy cache and the
//! experiment harness), `mutcon-http` + `mutcon-live` (a real HTTP
//! origin/proxy pair) and `mutcon-depgraph` (related-object deduction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive_ttr;
pub mod error;
pub mod fidelity;
pub mod functions;
pub mod group;
pub mod limd;
pub mod limit;
pub mod mutual;
pub mod object;
pub mod rate;
pub mod semantics;
pub mod time;
pub mod value;

pub use error::ConfigError;
pub use object::{ObjectId, Version, VersionStamp};
pub use semantics::Semantics;
pub use time::{Duration, Timestamp};
pub use value::Value;
