//! Groups of related objects (§5.2).
//!
//! Mutual consistency is defined over *groups* of related objects — a news
//! story and its embedded images, a set of stock quotes being compared.
//! Relationships can be specified by the user or deduced syntactically
//! (the `mutcon-depgraph` crate parses HTML for embedded links); either
//! way they end up in a [`GroupRegistry`] that the mutual-consistency
//! coordinators query for "which objects are related to the one I just
//! observed changing?".
//!
//! ```
//! use mutcon_core::group::{GroupRegistry, ObjectGroup};
//! use mutcon_core::object::ObjectId;
//!
//! # fn main() -> Result<(), mutcon_core::error::ConfigError> {
//! let mut registry = GroupRegistry::new();
//! registry.add(ObjectGroup::new(
//!     "breaking-news",
//!     [ObjectId::new("story.html"), ObjectId::new("photo.jpg")],
//! )?);
//! let story = ObjectId::new("story.html");
//! let related: Vec<_> = registry.related(&story).collect();
//! assert_eq!(related, vec![&ObjectId::new("photo.jpg")]);
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;


use crate::error::ConfigError;
use crate::object::ObjectId;

/// Identifier of a group of related objects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(String);

impl GroupId {
    /// Creates a group id.
    pub fn new(id: impl Into<String>) -> Self {
        GroupId(id.into())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for GroupId {
    fn from(s: &str) -> Self {
        GroupId::new(s)
    }
}

/// A set of mutually related objects.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectGroup {
    id: GroupId,
    members: BTreeSet<ObjectId>,
}

impl ObjectGroup {
    /// Creates a group from its members.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::GroupTooSmall`] unless at least two
    /// *distinct* members are supplied.
    pub fn new(
        id: impl Into<GroupId>,
        members: impl IntoIterator<Item = ObjectId>,
    ) -> Result<Self, ConfigError> {
        let members: BTreeSet<ObjectId> = members.into_iter().collect();
        if members.len() < 2 {
            return Err(ConfigError::GroupTooSmall { len: members.len() });
        }
        Ok(ObjectGroup {
            id: id.into(),
            members,
        })
    }

    /// The group id.
    pub fn id(&self) -> &GroupId {
        &self.id
    }

    /// The members, in sorted order.
    pub fn members(&self) -> impl Iterator<Item = &ObjectId> + '_ {
        self.members.iter()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false` (groups have ≥ 2 members), provided for the
    /// conventional `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` belongs to this group.
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.members.contains(id)
    }
}

impl From<String> for GroupId {
    fn from(s: String) -> Self {
        GroupId(s)
    }
}

/// All known groups, indexed for "related objects" queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupRegistry {
    groups: BTreeMap<GroupId, ObjectGroup>,
    /// Object → groups containing it.
    membership: BTreeMap<ObjectId, BTreeSet<GroupId>>,
}

impl GroupRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        GroupRegistry::default()
    }

    /// Adds (or replaces) a group.
    pub fn add(&mut self, group: ObjectGroup) {
        if let Some(old) = self.groups.remove(group.id()) {
            for m in old.members() {
                if let Some(set) = self.membership.get_mut(m) {
                    set.remove(old.id());
                    if set.is_empty() {
                        self.membership.remove(m);
                    }
                }
            }
        }
        for m in group.members() {
            self.membership
                .entry(m.clone())
                .or_default()
                .insert(group.id().clone());
        }
        self.groups.insert(group.id().clone(), group);
    }

    /// Removes a group by id, returning it if present.
    pub fn remove(&mut self, id: &GroupId) -> Option<ObjectGroup> {
        let group = self.groups.remove(id)?;
        for m in group.members() {
            if let Some(set) = self.membership.get_mut(m) {
                set.remove(id);
                if set.is_empty() {
                    self.membership.remove(m);
                }
            }
        }
        Some(group)
    }

    /// Looks up a group.
    pub fn get(&self, id: &GroupId) -> Option<&ObjectGroup> {
        self.groups.get(id)
    }

    /// Iterates over all groups.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectGroup> + '_ {
        self.groups.values()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the registry holds no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups containing `object`.
    pub fn groups_of<'a>(&'a self, object: &ObjectId) -> impl Iterator<Item = &'a ObjectGroup> + 'a {
        self.membership
            .get(object)
            .into_iter()
            .flat_map(|ids| ids.iter())
            .filter_map(|id| self.groups.get(id))
    }

    /// All objects related to `object` through any group, excluding
    /// `object` itself, without duplicates.
    pub fn related<'a>(&'a self, object: &'a ObjectId) -> impl Iterator<Item = &'a ObjectId> + 'a {
        let mut seen: BTreeSet<&ObjectId> = BTreeSet::new();
        seen.insert(object);
        self.groups_of(object)
            .flat_map(|g| g.members())
            .filter(move |m| seen.insert(m))
    }
}

impl FromIterator<ObjectGroup> for GroupRegistry {
    fn from_iter<I: IntoIterator<Item = ObjectGroup>>(iter: I) -> Self {
        let mut registry = GroupRegistry::new();
        for g in iter {
            registry.add(g);
        }
        registry
    }
}

impl Extend<ObjectGroup> for GroupRegistry {
    fn extend<I: IntoIterator<Item = ObjectGroup>>(&mut self, iter: I) {
        for g in iter {
            self.add(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    #[test]
    fn group_needs_two_distinct_members() {
        assert!(matches!(
            ObjectGroup::new("g", [oid("a")]),
            Err(ConfigError::GroupTooSmall { len: 1 })
        ));
        assert!(matches!(
            ObjectGroup::new("g", [oid("a"), oid("a")]),
            Err(ConfigError::GroupTooSmall { len: 1 })
        ));
        let g = ObjectGroup::new("g", [oid("a"), oid("b")]).unwrap();
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert!(g.contains(&oid("a")));
        assert!(!g.contains(&oid("c")));
        assert_eq!(g.id().as_str(), "g");
    }

    #[test]
    fn related_spans_multiple_groups() {
        let mut reg = GroupRegistry::new();
        reg.add(ObjectGroup::new("news", [oid("story"), oid("img")]).unwrap());
        reg.add(ObjectGroup::new("scores", [oid("story"), oid("total")]).unwrap());
        let related: Vec<_> = reg.related(&oid("story")).cloned().collect();
        assert_eq!(related, vec![oid("img"), oid("total")]);
        assert_eq!(reg.groups_of(&oid("story")).count(), 2);
        assert_eq!(reg.groups_of(&oid("img")).count(), 1);
        assert_eq!(reg.related(&oid("unknown")).count(), 0);
    }

    #[test]
    fn related_deduplicates() {
        let mut reg = GroupRegistry::new();
        reg.add(ObjectGroup::new("g1", [oid("a"), oid("b")]).unwrap());
        reg.add(ObjectGroup::new("g2", [oid("a"), oid("b"), oid("c")]).unwrap());
        let related: Vec<_> = reg.related(&oid("a")).cloned().collect();
        assert_eq!(related, vec![oid("b"), oid("c")]);
    }

    #[test]
    fn replacing_a_group_updates_membership() {
        let mut reg = GroupRegistry::new();
        reg.add(ObjectGroup::new("g", [oid("a"), oid("b")]).unwrap());
        reg.add(ObjectGroup::new("g", [oid("a"), oid("c")]).unwrap());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.related(&oid("b")).count(), 0);
        let related: Vec<_> = reg.related(&oid("a")).cloned().collect();
        assert_eq!(related, vec![oid("c")]);
    }

    #[test]
    fn remove_cleans_up() {
        let mut reg = GroupRegistry::new();
        reg.add(ObjectGroup::new("g", [oid("a"), oid("b")]).unwrap());
        let g = reg.remove(&GroupId::new("g")).unwrap();
        assert_eq!(g.len(), 2);
        assert!(reg.is_empty());
        assert_eq!(reg.related(&oid("a")).count(), 0);
        assert!(reg.remove(&GroupId::new("g")).is_none());
    }

    #[test]
    fn collect_and_extend() {
        let reg: GroupRegistry = [
            ObjectGroup::new("g1", [oid("a"), oid("b")]).unwrap(),
            ObjectGroup::new("g2", [oid("c"), oid("d")]).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(reg.len(), 2);
        let mut reg = reg;
        reg.extend([ObjectGroup::new("g3", [oid("e"), oid("f")]).unwrap()]);
        assert_eq!(reg.iter().count(), 3);
        assert!(reg.get(&GroupId::new("g3")).is_some());
    }
}
