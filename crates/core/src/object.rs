//! Identities and versions of cached web objects.
//!
//! The paper models each web object `a` as a sequence of *versions* created
//! by updates at the origin server: the version number starts at zero when
//! the object is created and increments on every update (§2). A proxy's
//! cached copy `P_a(t)` is always some (possibly stale) server version
//! `S_a(t')`. [`VersionStamp`] couples the version number with the server
//! time at which that version came into existence — the quantity that both
//! Δt-consistency and Mt-consistency are defined over.
//!
//! ```
//! use mutcon_core::object::{ObjectId, VersionStamp};
//! use mutcon_core::time::Timestamp;
//!
//! let story = ObjectId::new("cnn/breaking-news");
//! let v0 = VersionStamp::initial(Timestamp::ZERO);
//! let v1 = v0.next(Timestamp::from_mins(5));
//! assert!(v1.version() > v0.version());
//! assert_eq!(story.as_str(), "cnn/breaking-news");
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;


use crate::time::Timestamp;
use crate::value::Value;

/// A cheap-to-clone, hashable identifier for a web object (e.g. a URL path).
///
/// Internally an `Arc<str>`, so cloning an id shared between the cache, the
/// scheduler and group registries never copies the text.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(Arc<str>);

impl ObjectId {
    /// Creates an identifier from anything string-like.
    pub fn new(id: impl AsRef<str>) -> Self {
        ObjectId(Arc::from(id.as_ref()))
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectId {
    fn from(s: &str) -> Self {
        ObjectId::new(s)
    }
}

impl From<String> for ObjectId {
    fn from(s: String) -> Self {
        ObjectId(Arc::from(s))
    }
}

impl AsRef<str> for ObjectId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for ObjectId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A monotonically increasing version number assigned by the origin server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Version(u64);

impl Version {
    /// The version assigned when the object is first created (§2: "the
    /// version number is set to zero when the object is created").
    pub const INITIAL: Version = Version(0);

    /// Creates a version from its raw counter value.
    pub const fn from_raw(v: u64) -> Self {
        Version(v)
    }

    /// The raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The version produced by the next update.
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A version together with the server time at which it was created.
///
/// The creation time is exactly the `Last-Modified` value an HTTP origin
/// would report for this version, and the origination instant `t1`/`t2`
/// used in the Mt-consistency definition (Equation 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionStamp {
    version: Version,
    created_at: Timestamp,
}

impl VersionStamp {
    /// The stamp for a freshly created object.
    pub fn initial(created_at: Timestamp) -> Self {
        VersionStamp {
            version: Version::INITIAL,
            created_at,
        }
    }

    /// Creates a stamp from parts.
    pub fn new(version: Version, created_at: Timestamp) -> Self {
        VersionStamp {
            version,
            created_at,
        }
    }

    /// The stamp produced by an update at `at`.
    pub fn next(self, at: Timestamp) -> VersionStamp {
        VersionStamp {
            version: self.version.next(),
            created_at: at,
        }
    }

    /// The version number.
    pub fn version(self) -> Version {
        self.version
    }

    /// Server time at which this version came into existence
    /// (the HTTP `Last-Modified` instant).
    pub fn created_at(self) -> Timestamp {
        self.created_at
    }
}

impl fmt::Display for VersionStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.version, self.created_at)
    }
}

/// A snapshot of an object as fetched from (or held at) a server or proxy:
/// version stamp plus, for value-domain objects, the numeric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectSnapshot {
    stamp: VersionStamp,
    value: Option<Value>,
}

impl ObjectSnapshot {
    /// A snapshot of a purely temporal object (HTML page, image, …).
    pub fn temporal(stamp: VersionStamp) -> Self {
        ObjectSnapshot { stamp, value: None }
    }

    /// A snapshot of a value-bearing object (stock quote, score, …).
    pub fn with_value(stamp: VersionStamp, value: Value) -> Self {
        ObjectSnapshot {
            stamp,
            value: Some(value),
        }
    }

    /// The version stamp.
    pub fn stamp(&self) -> VersionStamp {
        self.stamp
    }

    /// The numeric value, if this object carries one.
    pub fn value(&self) -> Option<Value> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_round_trips() {
        let id = ObjectId::new("nyt/ap");
        assert_eq!(id.as_str(), "nyt/ap");
        assert_eq!(id.to_string(), "nyt/ap");
        assert_eq!(ObjectId::from("nyt/ap"), id);
        assert_eq!(ObjectId::from(String::from("nyt/ap")), id);
        let clone = id.clone();
        assert_eq!(clone, id);
    }

    #[test]
    fn object_id_borrows_as_str() {
        use std::collections::HashMap;
        let mut map: HashMap<ObjectId, u32> = HashMap::new();
        map.insert(ObjectId::new("a"), 1);
        assert_eq!(map.get("a"), Some(&1));
    }

    #[test]
    fn versions_increment() {
        let v = Version::INITIAL;
        assert_eq!(v.as_u64(), 0);
        assert_eq!(v.next().as_u64(), 1);
        assert_eq!(v.next().to_string(), "v1");
        assert!(v < v.next());
    }

    #[test]
    fn stamps_track_creation_time() {
        let v0 = VersionStamp::initial(Timestamp::from_secs(5));
        assert_eq!(v0.version(), Version::INITIAL);
        assert_eq!(v0.created_at(), Timestamp::from_secs(5));
        let v1 = v0.next(Timestamp::from_secs(9));
        assert_eq!(v1.version().as_u64(), 1);
        assert_eq!(v1.created_at(), Timestamp::from_secs(9));
        assert!(v0 < v1);
        assert_eq!(v1.to_string(), "v1@t+9000ms");
    }

    #[test]
    fn snapshots_expose_parts() {
        let stamp = VersionStamp::initial(Timestamp::ZERO);
        let plain = ObjectSnapshot::temporal(stamp);
        assert_eq!(plain.value(), None);
        let priced = ObjectSnapshot::with_value(stamp, Value::from(36.25));
        assert_eq!(priced.value(), Some(Value::from(36.25)));
        assert_eq!(priced.stamp(), stamp);
    }
}
