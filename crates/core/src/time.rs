//! Time primitives shared by every crate in the workspace.
//!
//! The simulator, the algorithms and the live proxy all reason about time as
//! an integer number of **milliseconds**. Two newtypes keep points in time
//! and spans of time from being confused ([C-NEWTYPE]):
//!
//! * [`Timestamp`] — an absolute point on the (virtual or real) timeline,
//!   measured in milliseconds since an arbitrary epoch.
//! * [`Duration`] — a non-negative span of time in milliseconds.
//!
//! Millisecond resolution is three orders of magnitude finer than the
//! paper's workloads need (trace updates arrive minutes apart; stock ticks
//! seconds apart) while keeping all arithmetic exact — no floating-point
//! drift in the event queue.
//!
//! ```
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! let start = Timestamp::ZERO;
//! let later = start + Duration::from_mins(10);
//! assert_eq!(later.since(start), Duration::from_mins(10));
//! assert_eq!(Duration::from_mins(10).as_secs_f64(), 600.0);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};


/// An absolute point in time, in milliseconds since an arbitrary epoch.
///
/// For simulated experiments the epoch is the start of the simulation; for
/// the live proxy it is the Unix epoch. Only differences between timestamps
/// are ever semantically meaningful.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The origin of the timeline.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable timestamp; useful as an "infinitely far in
    /// the future" sentinel for event scheduling.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000)
    }

    /// Creates a timestamp `mins` minutes after the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        Timestamp(mins * 60_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, rounded down.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (useful for plotting/reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; use
    /// [`Timestamp::checked_since`] when the ordering is not statically
    /// known.
    pub fn since(self, earlier: Timestamp) -> Duration {
        self.checked_since(earlier).unwrap_or_else(|| {
            panic!("timestamp {self} is earlier than {earlier}");
        })
    }

    /// The span from `earlier` to `self`, or `None` if `earlier > self`.
    pub fn checked_since(self, earlier: Timestamp) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// The absolute distance between two timestamps.
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

/// A non-negative span of time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration(mins * 60_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3_600_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || secs.is_nan() {
            Duration::ZERO
        } else {
            let ms = (secs * 1_000.0).round();
            if ms >= u64::MAX as f64 {
                Duration::MAX
            } else {
                Duration(ms as u64)
            }
        }
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds, rounded down.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, saturating at the representable
    /// extremes. NaN scales are treated as zero.
    pub fn mul_f64(self, scale: f64) -> Duration {
        if scale.is_nan() || scale <= 0.0 {
            return Duration::ZERO;
        }
        let scaled = self.0 as f64 * scale;
        if scaled >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(scaled.round() as u64)
        }
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Clamps the duration into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo <= hi, "invalid clamp bounds: {lo} > {hi}");
        Duration(self.0.clamp(lo.0, hi.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(60_000) && self.0 > 0 {
            write!(f, "{}min", self.0 / 60_000)
        } else if self.0.is_multiple_of(1_000) && self.0 > 0 {
            write!(f, "{}s", self.0 / 1_000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;

    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;

    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_mins(1), Duration::from_secs(60));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Timestamp::from_secs(2), Timestamp::from_millis(2_000));
        assert_eq!(Timestamp::from_mins(3), Timestamp::from_secs(180));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        let d = Duration::from_secs(40);
        assert_eq!(t + d, Timestamp::from_secs(140));
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn checked_since_handles_reversal() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(2);
        assert_eq!(late.checked_since(early), Some(Duration::from_secs(1)));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(early.abs_diff(late), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_reversal() {
        let _ = Timestamp::from_secs(1).since(Timestamp::from_secs(2));
    }

    #[test]
    fn duration_float_conversions() {
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1_500));
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::MAX);
        assert!((Duration::from_millis(2_500).as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((Duration::from_mins(3).as_mins_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_saturates_and_rounds() {
        let d = Duration::from_secs(10);
        assert_eq!(d.mul_f64(1.5), Duration::from_secs(15));
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
        assert_eq!(d.mul_f64(-1.0), Duration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::MAX.mul_f64(2.0), Duration::MAX);
    }

    #[test]
    fn clamp_and_minmax() {
        let lo = Duration::from_secs(1);
        let hi = Duration::from_secs(10);
        assert_eq!(Duration::from_secs(5).clamp(lo, hi), Duration::from_secs(5));
        assert_eq!(Duration::ZERO.clamp(lo, hi), lo);
        assert_eq!(Duration::from_secs(100).clamp(lo, hi), hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    #[should_panic(expected = "invalid clamp bounds")]
    fn clamp_rejects_inverted_bounds() {
        let _ = Duration::ZERO.clamp(Duration::from_secs(2), Duration::from_secs(1));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::from_secs(1)),
            Timestamp::MAX
        );
        assert_eq!(
            Timestamp::ZERO.saturating_sub(Duration::from_secs(1)),
            Timestamp::ZERO
        );
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_secs(1)),
            Duration::MAX
        );
        assert_eq!(
            Duration::ZERO.saturating_sub(Duration::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::from_mins(5).to_string(), "5min");
        assert_eq!(Duration::from_secs(5).to_string(), "5s");
        assert_eq!(Duration::from_millis(50).to_string(), "50ms");
        assert_eq!(Duration::ZERO.to_string(), "0ms");
        assert_eq!(Timestamp::from_millis(7).to_string(), "t+7ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [Duration::from_secs(1), Duration::from_secs(2)]
            .into_iter()
            .sum();
        assert_eq!(total, Duration::from_secs(3));
    }
}
