//! Mt-consistency coordination in the temporal domain (§3.2).
//!
//! With each object polled independently by LIMD at its own TTR, two
//! related objects drift out of phase — by Δ/2 on average when both poll
//! every Δ, and by more when LIMD has grown their TTRs. The key
//! observation of §3.2 is that *polls only need synchronizing when an
//! update actually happens*: in the absence of updates no mutual guarantee
//! can be violated, however out-of-phase the polls are.
//!
//! [`MtCoordinator`] therefore reacts to observed updates. When a poll of
//! object `o` reports a modification, the coordinator decides, for every
//! related object `q`:
//!
//! * **Baseline** — never trigger anything (individual LIMD only; worst
//!   fidelity, fewest polls).
//! * **Triggered polls** — poll `q` immediately, *unless* `q`'s previous
//!   poll was within δ or its next scheduled poll is within δ (those are
//!   already inside the user's tolerance). Guarantees 100% Mt fidelity at
//!   the price of extra polls.
//! * **Rate heuristic** — like triggered polls, but only for objects whose
//!   estimated update rate is at least comparable to `o`'s. Slower objects
//!   are left to their own LIMD schedule; this saves polls and costs an
//!   occasional violation when a slow object happens to change in concert
//!   with a fast one (quantified in Figure 5(b)).
//!
//! ```
//! use mutcon_core::mutual::temporal::{MtCoordinator, MtPolicy};
//! use mutcon_core::limd::PollResult;
//! use mutcon_core::object::ObjectId;
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! let story = ObjectId::new("story.html");
//! let image = ObjectId::new("photo.jpg");
//! let mut mt = MtCoordinator::new(
//!     Duration::from_mins(5),
//!     MtPolicy::TriggeredPolls,
//!     [story.clone(), image.clone()],
//! );
//!
//! // The image was just polled; its next poll is far away.
//! mt.record_scheduled_poll(&image, Timestamp::from_mins(100));
//!
//! // Polling the story at t=30min reveals an update → the image needs an
//! // immediate poll to restore mutual consistency.
//! let result = PollResult::modified(Timestamp::from_mins(29));
//! let triggers = mt.on_poll(&story, Timestamp::from_mins(30), &result);
//! assert_eq!(triggers, vec![image]);
//! ```

use std::collections::BTreeMap;


use crate::limd::{PollResult, PollView};
use crate::object::ObjectId;
use crate::rate::UpdateRateEstimator;
use crate::time::{Duration, Timestamp};

/// Which §3.2 mutual-consistency strategy to run on top of LIMD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MtPolicy {
    /// Individual LIMD only; no mutual support.
    Baseline,
    /// An observed update triggers polls on all related objects.
    TriggeredPolls,
    /// An observed update triggers polls only on related objects changing
    /// at a comparable-or-faster estimated rate.
    RateHeuristic {
        /// `q` is triggered when `rate(q) ≥ threshold · rate(o)`.
        /// The paper's "approximately the same or faster rate" corresponds
        /// to a threshold slightly below 1 (default 0.75).
        threshold: f64,
    },
}

impl MtPolicy {
    /// The rate heuristic with the default comparability threshold.
    pub const HEURISTIC: MtPolicy = MtPolicy::RateHeuristic { threshold: 0.75 };
}

/// The canonical wire form: `baseline`, `triggered`, or `rate:THRESHOLD`
/// (round-tripped by the `FromStr` impl; the live proxy's admin API
/// ships policies in this form).
impl std::fmt::Display for MtPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtPolicy::Baseline => f.write_str("baseline"),
            MtPolicy::TriggeredPolls => f.write_str("triggered"),
            MtPolicy::RateHeuristic { threshold } => write!(f, "rate:{threshold}"),
        }
    }
}

impl std::str::FromStr for MtPolicy {
    type Err = crate::error::ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |message: String| crate::error::ConfigError::InvalidSpec { message };
        match s.trim() {
            "baseline" => Ok(MtPolicy::Baseline),
            "triggered" => Ok(MtPolicy::TriggeredPolls),
            "rate" => Ok(MtPolicy::HEURISTIC),
            other => match other.strip_prefix("rate:") {
                Some(threshold) => {
                    let threshold: f64 = threshold.trim().parse().map_err(|_| {
                        bad("`rate:THRESHOLD` needs a numeric threshold".to_owned())
                    })?;
                    if !(threshold.is_finite() && threshold >= 0.0) {
                        return Err(bad(
                            "rate threshold must be finite and non-negative".to_owned(),
                        ));
                    }
                    Ok(MtPolicy::RateHeuristic { threshold })
                }
                None => Err(bad(format!(
                    "unknown Mt policy `{other}` (expected baseline, triggered, or rate:THRESHOLD)"
                ))),
            },
        }
    }
}

/// Per-object bookkeeping the coordinator needs.
#[derive(Debug, Clone)]
struct MemberState {
    last_poll: Option<Timestamp>,
    next_poll: Option<Timestamp>,
    rate: UpdateRateEstimator,
}

impl MemberState {
    fn new(rate_alpha: f64) -> Self {
        MemberState {
            last_poll: None,
            next_poll: None,
            rate: UpdateRateEstimator::new(rate_alpha),
        }
    }
}

/// Mt-consistency coordinator for one group of related objects.
///
/// Drive it alongside LIMD: report every poll through
/// [`MtCoordinator::on_poll`] (which returns the related objects that must
/// be polled *now*) and every (re)scheduled poll through
/// [`MtCoordinator::record_scheduled_poll`].
///
/// The key type `K` identifies group members. It defaults to
/// [`ObjectId`]; simulation drivers that intern object ids to dense
/// integer handles instantiate `MtCoordinator<u32>` so the per-poll
/// bookkeeping never touches (or clones) an `Arc<str>`.
#[derive(Debug, Clone)]
pub struct MtCoordinator<K = ObjectId> {
    delta: Duration,
    policy: MtPolicy,
    members: BTreeMap<K, MemberState>,
    /// EWMA weight used for the per-object update-rate estimators.
    rate_alpha: f64,
    triggered_polls: u64,
}

impl<K: Ord + Clone> MtCoordinator<K> {
    /// Default EWMA weight for update-rate estimation.
    const DEFAULT_RATE_ALPHA: f64 = 0.3;

    /// Creates a coordinator with tolerance `delta` (the δ of Equation 4)
    /// over the given group members.
    pub fn new(
        delta: Duration,
        policy: MtPolicy,
        members: impl IntoIterator<Item = K>,
    ) -> Self {
        let rate_alpha = Self::DEFAULT_RATE_ALPHA;
        MtCoordinator {
            delta,
            policy,
            members: members
                .into_iter()
                .map(|id| (id, MemberState::new(rate_alpha)))
                .collect(),
            rate_alpha,
            triggered_polls: 0,
        }
    }

    /// The mutual tolerance δ.
    pub fn delta(&self) -> Duration {
        self.delta
    }

    /// The active policy.
    pub fn policy(&self) -> MtPolicy {
        self.policy
    }

    /// Group members known to this coordinator.
    pub fn members(&self) -> impl Iterator<Item = &K> + '_ {
        self.members.keys()
    }

    /// Adds a member after construction (no-op if already present).
    pub fn add_member(&mut self, id: K) {
        let alpha = self.rate_alpha;
        self.members.entry(id).or_insert_with(|| MemberState::new(alpha));
    }

    /// Total number of extra polls this coordinator has requested.
    pub fn triggered_poll_count(&self) -> u64 {
        self.triggered_polls
    }

    /// Records when `object`'s next regular (LIMD-scheduled) poll will
    /// occur. Keeping this current lets the coordinator skip triggers that
    /// the regular schedule already covers.
    pub fn record_scheduled_poll(&mut self, object: &K, at: Timestamp) {
        if let Some(state) = self.members.get_mut(object) {
            state.next_poll = Some(at);
        }
    }

    /// Estimated update rate of `object` in updates per millisecond, once
    /// two modifications have been observed.
    pub fn estimated_rate(&self, object: &K) -> Option<f64> {
        self.members.get(object)?.rate.rate_per_ms()
    }

    /// Reports a completed poll of `object` at `now` and returns the
    /// related objects that should be polled immediately to preserve
    /// Mt-consistency.
    ///
    /// Objects outside the group are ignored and produce no triggers.
    pub fn on_poll(
        &mut self,
        object: &K,
        now: Timestamp,
        result: &PollResult,
    ) -> Vec<K> {
        self.observe(object, now, result.as_view())
    }

    /// Allocation-free equivalent of [`MtCoordinator::on_poll`] consuming
    /// a borrowed [`PollView`]. (The returned trigger list only allocates
    /// when there *are* triggers; the common no-trigger poll returns an
    /// unallocated empty `Vec`.)
    pub fn observe(&mut self, object: &K, now: Timestamp, view: PollView<'_>) -> Vec<K> {
        let Some(state) = self.members.get_mut(object) else {
            return Vec::new();
        };
        state.last_poll = Some(now);
        // A triggered poll (or regular poll) satisfies any pending trigger;
        // the next regular poll will be re-announced by the scheduler.
        let modified = match view {
            PollView::NotModified => false,
            PollView::Modified { last_modified, history } => {
                if let Some(history) = history {
                    for &t in history {
                        state.rate.observe_modification(t);
                    }
                }
                state.rate.observe_modification(last_modified);
                true
            }
        };

        if !modified || matches!(self.policy, MtPolicy::Baseline) {
            return Vec::new();
        }

        let updated_rate = self.members[&*object].rate.rate_per_ms();
        // §3.2 suppresses triggers when the target's next/previous poll is
        // within δ. The previous-poll case is *provably* safe: a copy
        // polled x ≤ δ ago was current then, so its validity reaches to
        // within x of the fresh version — the Equation 4 gap stays ≤ δ.
        // The next-poll case only bounds how LONG a violation can last,
        // not whether one occurs, so applying it would break the paper's
        // "triggered polls have fidelity 1" property (Figure 5(b)).
        // We therefore use it only for the heuristic, which tolerates
        // occasional violations by design.
        let use_next_poll_suppression = matches!(self.policy, MtPolicy::RateHeuristic { .. });
        let mut triggers = Vec::new();
        for (id, member) in &self.members {
            if id == object {
                continue;
            }
            if !self.needs_trigger(member, now, use_next_poll_suppression) {
                continue;
            }
            if let MtPolicy::RateHeuristic { threshold } = self.policy {
                if !Self::comparable_rate(updated_rate, member.rate.rate_per_ms(), threshold) {
                    continue;
                }
            }
            triggers.push(id.clone());
        }
        self.triggered_polls += triggers.len() as u64;
        triggers
    }

    /// §3.2: "an additional poll is triggered for an object only if its
    /// next/previous poll instant is more than δ time units away".
    fn needs_trigger(&self, member: &MemberState, now: Timestamp, use_next: bool) -> bool {
        if let Some(prev) = member.last_poll {
            if now.abs_diff(prev) <= self.delta {
                return false;
            }
        }
        if use_next {
            if let Some(next) = member.next_poll {
                if next >= now && next.since(now) <= self.delta {
                    return false;
                }
            }
        }
        true
    }

    /// Is `candidate`'s rate comparable to or faster than `updated`'s?
    ///
    /// Unknown rates err on the side of triggering — until both estimators
    /// have warmed up the heuristic behaves like plain triggered polls.
    fn comparable_rate(updated: Option<f64>, candidate: Option<f64>, threshold: f64) -> bool {
        match (updated, candidate) {
            (Some(u), Some(c)) => c >= u * threshold,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    fn mins(m: u64) -> Timestamp {
        Timestamp::from_mins(m)
    }

    fn coordinator(policy: MtPolicy) -> MtCoordinator {
        MtCoordinator::new(Duration::from_mins(5), policy, [oid("a"), oid("b"), oid("c")])
    }

    #[test]
    fn baseline_never_triggers() {
        let mut mt = coordinator(MtPolicy::Baseline);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert!(triggers.is_empty());
        assert_eq!(mt.triggered_poll_count(), 0);
    }

    #[test]
    fn unmodified_polls_never_trigger() {
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::NotModified);
        assert!(triggers.is_empty());
    }

    #[test]
    fn triggered_polls_hit_all_related() {
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("b"), oid("c")]);
        assert_eq!(mt.triggered_poll_count(), 2);
    }

    #[test]
    fn recent_previous_poll_suppresses_trigger() {
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        // b was polled 3 minutes ago (≤ δ = 5min).
        mt.on_poll(&oid("b"), mins(27), &PollResult::NotModified);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("c")]);
    }

    #[test]
    fn imminent_next_poll_suppresses_trigger_for_heuristic() {
        let mut mt = coordinator(MtPolicy::HEURISTIC);
        // c's regular poll is due in 2 minutes (≤ δ).
        mt.record_scheduled_poll(&oid("c"), mins(32));
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("b")]);
    }

    #[test]
    fn imminent_next_poll_does_not_suppress_triggered_polls() {
        // Triggered polls must deliver fidelity 1, so only the provably
        // safe previous-poll suppression applies to them.
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        mt.record_scheduled_poll(&oid("c"), mins(32));
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("b"), oid("c")]);
    }

    #[test]
    fn distant_next_poll_does_not_suppress() {
        let mut mt = coordinator(MtPolicy::HEURISTIC);
        mt.record_scheduled_poll(&oid("c"), mins(60));
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("b"), oid("c")]);
    }

    #[test]
    fn heuristic_triggers_when_rates_unknown() {
        let mut mt = coordinator(MtPolicy::HEURISTIC);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert_eq!(triggers, vec![oid("b"), oid("c")]);
    }

    #[test]
    fn heuristic_skips_slower_objects() {
        let mut mt = MtCoordinator::new(
            Duration::from_mins(5),
            MtPolicy::RateHeuristic { threshold: 0.75 },
            [oid("fast"), oid("slow")],
        );
        // Teach the coordinator the rates: fast updates every 10 min,
        // slow every 60 min.
        mt.on_poll(&oid("fast"), mins(10), &PollResult::modified(mins(10)));
        mt.on_poll(&oid("fast"), mins(20), &PollResult::modified(mins(20)));
        mt.on_poll(&oid("slow"), mins(60), &PollResult::modified(mins(60)));
        mt.on_poll(&oid("slow"), mins(120), &PollResult::modified(mins(120)));
        assert!(mt.estimated_rate(&oid("fast")).unwrap() > mt.estimated_rate(&oid("slow")).unwrap());

        // Now a fast-object update must NOT trigger the slow object…
        let triggers = mt.on_poll(&oid("fast"), mins(130), &PollResult::modified(mins(129)));
        assert!(triggers.is_empty(), "slow object unexpectedly triggered: {triggers:?}");

        // …but a slow-object update triggers the fast object.
        let triggers = mt.on_poll(&oid("slow"), mins(180), &PollResult::modified(mins(179)));
        assert_eq!(triggers, vec![oid("fast")]);
    }

    #[test]
    fn history_feeds_rate_estimator() {
        let mut mt = coordinator(MtPolicy::HEURISTIC);
        let result = PollResult::modified_with_history(mins(28), [mins(20), mins(24), mins(28)]);
        mt.on_poll(&oid("a"), mins(30), &result);
        // Three modifications 4 minutes apart → a rate is available after
        // a single poll.
        assert!(mt.estimated_rate(&oid("a")).is_some());
    }

    #[test]
    fn unknown_object_is_ignored() {
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        let triggers = mt.on_poll(&oid("zzz"), mins(30), &PollResult::modified(mins(29)));
        assert!(triggers.is_empty());
    }

    #[test]
    fn add_member_expands_group() {
        let mut mt = coordinator(MtPolicy::TriggeredPolls);
        mt.add_member(oid("d"));
        assert_eq!(mt.members().count(), 4);
        let triggers = mt.on_poll(&oid("a"), mins(30), &PollResult::modified(mins(29)));
        assert!(triggers.contains(&oid("d")));
    }

    #[test]
    fn accessors() {
        let mt = coordinator(MtPolicy::TriggeredPolls);
        assert_eq!(mt.delta(), Duration::from_mins(5));
        assert_eq!(mt.policy(), MtPolicy::TriggeredPolls);
    }

    #[test]
    fn policy_wire_form_round_trips() {
        for policy in [
            MtPolicy::Baseline,
            MtPolicy::TriggeredPolls,
            MtPolicy::HEURISTIC,
            MtPolicy::RateHeuristic { threshold: 1.25 },
        ] {
            let wire = policy.to_string();
            assert_eq!(wire.parse::<MtPolicy>().unwrap(), policy, "{wire}");
        }
        assert_eq!("rate".parse::<MtPolicy>().unwrap(), MtPolicy::HEURISTIC);
        for bad in ["", "Baseline", "rate:", "rate:x", "rate:-1", "rate:inf"] {
            assert!(bad.parse::<MtPolicy>().is_err(), "accepted {bad:?}");
        }
    }
}
