//! Mv-consistency coordination in the value domain (§4.2).
//!
//! The goal: keep `|f(S_a, S_b) − f(P_a, P_b)| < δ` for a user-chosen
//! function `f` over two cached values. Two approaches from the paper:
//!
//! * **Virtual object** ([`VirtualObjectPolicy`]) — treat `f(a, b)` itself
//!   as the value of a virtual object and run the §4.1 adaptive-TTR
//!   machinery on it: estimate the rate `r` at which `f` changes
//!   (Equation 11) and poll both objects every `TTR = (δ/r)·θ`
//!   (Equation 12). The feedback factor `θ ∈ (0, 1]` shrinks
//!   multiplicatively whenever a violation is detected and recovers
//!   gradually in their absence, biasing the estimate conservative exactly
//!   when the linear extrapolation of `f` has been failing.
//! * **Partitioned tolerance** ([`PartitionedPolicy`]) — when `f` is
//!   difference-like, split δ into per-object budgets δ_a + δ_b = δ and
//!   enforce plain Δv-consistency on each object independently; by the
//!   triangle inequality the mutual bound follows. The split is
//!   re-apportioned periodically so the faster-changing object gets the
//!   *smaller* tolerance: δ_a = (r_b/(r_a+r_b))·δ (§4.2).
//!
//! The trade-off measured in Figure 7: partitioning tracks the server
//! function more tightly (higher fidelity) at the cost of more polls.
//!
//! ```
//! use mutcon_core::functions::ValueFunction;
//! use mutcon_core::mutual::value::{PairMember, PartitionedPolicy, PartitionedConfig};
//! use mutcon_core::time::{Duration, Timestamp};
//! use mutcon_core::value::Value;
//!
//! # fn main() -> Result<(), mutcon_core::error::ConfigError> {
//! let mut policy = PartitionedConfig::builder(ValueFunction::Difference, Value::new(0.6))
//!     .ttr_bounds(Duration::from_secs(5), Duration::from_secs(300))
//!     .build()?
//!     .into_policy();
//!
//! // Each member object polls on its own schedule.
//! let ttr_a = policy.on_poll(PairMember::A, Timestamp::from_secs(0), Value::new(36.10));
//! let ttr_b = policy.on_poll(PairMember::B, Timestamp::from_secs(0), Value::new(161.00));
//! assert!(ttr_a >= Duration::from_secs(5) && ttr_b >= Duration::from_secs(5));
//! # Ok(())
//! # }
//! ```


use crate::adaptive_ttr::{AdaptiveTtr, AdaptiveTtrConfig};
use crate::error::ConfigError;
use crate::functions::ValueFunction;
use crate::rate::ValueRateEstimator;
use crate::time::{Duration, Timestamp};
use crate::value::Value;

/// Configuration of the θ feedback factor of Equation 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// Multiplier applied to θ on a detected violation (`0 < · < 1`).
    pub decrease: f64,
    /// Multiplier applied to θ after a violation-free poll (`≥ 1`); θ is
    /// capped at 1.
    pub increase: f64,
    /// Floor for θ.
    pub min: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            decrease: 0.7,
            increase: 1.1,
            min: 0.05,
        }
    }
}

impl FeedbackConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "feedback.decrease",
                value: self.decrease,
                range: "(0, 1)",
            });
        }
        if !(self.increase >= 1.0 && self.increase.is_finite()) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "feedback.increase",
                value: self.increase,
                range: "[1, ∞)",
            });
        }
        if !(self.min > 0.0 && self.min <= 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "feedback.min",
                value: self.min,
                range: "(0, 1]",
            });
        }
        Ok(())
    }
}

/// Validated configuration for the virtual-object Mv approach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualObjectConfig {
    function: ValueFunction,
    delta: Value,
    ttr: AdaptiveTtrConfig,
    feedback: FeedbackConfig,
}

impl VirtualObjectConfig {
    /// Starts building a virtual-object policy for function `f` and
    /// mutual tolerance `delta` (the δ of Equation 5).
    pub fn builder(function: ValueFunction, delta: Value) -> VirtualObjectConfigBuilder {
        VirtualObjectConfigBuilder {
            function,
            delta,
            smoothing: 0.5,
            alpha: 0.5,
            ttr_min: Duration::from_secs(1),
            ttr_max: Duration::from_mins(10),
            feedback: FeedbackConfig::default(),
        }
    }

    /// The function being tracked.
    pub fn function(&self) -> ValueFunction {
        self.function
    }

    /// The mutual tolerance δ.
    pub fn delta(&self) -> Value {
        self.delta
    }

    /// Consumes the configuration into a policy.
    pub fn into_policy(self) -> VirtualObjectPolicy {
        VirtualObjectPolicy::new(self)
    }
}

/// Builder for [`VirtualObjectConfig`].
#[derive(Debug, Clone)]
pub struct VirtualObjectConfigBuilder {
    function: ValueFunction,
    delta: Value,
    smoothing: f64,
    alpha: f64,
    ttr_min: Duration,
    ttr_max: Duration,
    feedback: FeedbackConfig,
}

impl VirtualObjectConfigBuilder {
    /// Sets the smoothing weight `w` of the underlying adaptive TTR.
    pub fn smoothing(mut self, w: f64) -> Self {
        self.smoothing = w;
        self
    }

    /// Sets the α-blend of the underlying adaptive TTR (Equation 10).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the TTR clamp bounds.
    pub fn ttr_bounds(mut self, min: Duration, max: Duration) -> Self {
        self.ttr_min = min;
        self.ttr_max = max;
        self
    }

    /// Sets the θ feedback dynamics.
    pub fn feedback(mut self, feedback: FeedbackConfig) -> Self {
        self.feedback = feedback;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if δ is not positive, the TTR bounds are
    /// invalid, or the feedback parameters are outside their ranges.
    pub fn build(self) -> Result<VirtualObjectConfig, ConfigError> {
        self.feedback.validate()?;
        let ttr = AdaptiveTtrConfig::builder(self.delta)
            .smoothing(self.smoothing)
            .alpha(self.alpha)
            .ttr_bounds(self.ttr_min, self.ttr_max)
            .build()?;
        Ok(VirtualObjectConfig {
            function: self.function,
            delta: self.delta,
            ttr,
            feedback: self.feedback,
        })
    }
}

/// Outcome of one pair-poll under the virtual-object policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvDecision {
    /// When to poll the pair next, relative to this poll.
    pub ttr: Duration,
    /// Whether this poll detected that `f` had drifted ≥ δ since the
    /// previous poll (i.e. the guarantee was violated in the interim).
    pub violated: bool,
    /// The freshly observed `f(a, b)`.
    pub f_value: Value,
    /// The feedback factor θ after this poll.
    pub theta: f64,
}

/// The virtual-object Mv policy: both objects are polled together on a
/// single schedule derived from the rate of change of `f` (Equations 11
/// and 12).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualObjectPolicy {
    config: VirtualObjectConfig,
    ttr: AdaptiveTtr,
    theta: f64,
    last_f: Option<Value>,
    violations: u64,
    polls: u64,
}

impl VirtualObjectPolicy {
    /// Creates the policy; θ starts at 1 ("initially θ = 1").
    pub fn new(config: VirtualObjectConfig) -> Self {
        VirtualObjectPolicy {
            ttr: AdaptiveTtr::new(config.ttr),
            config,
            theta: 1.0,
            last_f: None,
            violations: 0,
            polls: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VirtualObjectConfig {
        &self.config
    }

    /// Current feedback factor θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Violations detected so far.
    pub fn violation_count(&self) -> u64 {
        self.violations
    }

    /// Pair-polls performed so far.
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// Feeds the values fetched by polling *both* objects at `now`.
    pub fn on_poll(&mut self, now: Timestamp, value_a: Value, value_b: Value) -> MvDecision {
        let f_new = self.config.function.eval(value_a, value_b);
        self.polls += 1;

        // Violation: f drifted by at least δ between the previous poll and
        // this one, so the cached pair was (at some point) out of bounds.
        let violated = self
            .last_f
            .is_some_and(|prev| f_new.abs_diff(prev) >= self.config.delta);
        if violated {
            self.violations += 1;
            self.theta = (self.theta * self.config.feedback.decrease).max(self.config.feedback.min);
        } else {
            self.theta = (self.theta * self.config.feedback.increase).min(1.0);
        }
        self.last_f = Some(f_new);

        let ttr = self.ttr.on_poll_scaled(now, f_new, self.theta);
        MvDecision {
            ttr,
            violated,
            f_value: f_new,
            theta: self.theta,
        }
    }
}

/// Which member of the pair a partitioned-policy poll refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairMember {
    /// The first object (e.g. the first stock in the comparison).
    A,
    /// The second object.
    B,
}

/// Validated configuration for the partitioned Mv approach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedConfig {
    function: ValueFunction,
    delta: Value,
    smoothing: f64,
    alpha: f64,
    ttr_min: Duration,
    ttr_max: Duration,
    repartition_every: u32,
}

impl PartitionedConfig {
    /// Starts building a partitioned policy for function `f` (which must
    /// support partitioning) and mutual tolerance `delta`.
    pub fn builder(function: ValueFunction, delta: Value) -> PartitionedConfigBuilder {
        PartitionedConfigBuilder {
            function,
            delta,
            smoothing: 0.5,
            alpha: 0.5,
            ttr_min: Duration::from_secs(1),
            ttr_max: Duration::from_mins(10),
            repartition_every: 8,
        }
    }

    /// The function being tracked.
    pub fn function(&self) -> ValueFunction {
        self.function
    }

    /// The mutual tolerance δ.
    pub fn delta(&self) -> Value {
        self.delta
    }

    /// Consumes the configuration into a policy.
    pub fn into_policy(self) -> PartitionedPolicy {
        PartitionedPolicy::new(self)
    }
}

/// Builder for [`PartitionedConfig`].
#[derive(Debug, Clone)]
pub struct PartitionedConfigBuilder {
    function: ValueFunction,
    delta: Value,
    smoothing: f64,
    alpha: f64,
    ttr_min: Duration,
    ttr_max: Duration,
    repartition_every: u32,
}

impl PartitionedConfigBuilder {
    /// Sets the smoothing weight `w` of the per-object adaptive TTRs.
    pub fn smoothing(mut self, w: f64) -> Self {
        self.smoothing = w;
        self
    }

    /// Sets the α-blend of the per-object adaptive TTRs.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the TTR clamp bounds.
    pub fn ttr_bounds(mut self, min: Duration, max: Duration) -> Self {
        self.ttr_min = min;
        self.ttr_max = max;
        self
    }

    /// Sets how many polls elapse between re-apportionings of δ
    /// (0 disables re-apportioning; the initial even split persists).
    pub fn repartition_every(mut self, polls: u32) -> Self {
        self.repartition_every = polls;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the function does not support
    /// partitioning (e.g. [`ValueFunction::Ratio`]), δ is not positive, or
    /// the TTR bounds are invalid.
    pub fn build(self) -> Result<PartitionedConfig, ConfigError> {
        if self.function.lipschitz_weights().is_none() {
            return Err(ConfigError::ParameterOutOfRange {
                name: "function",
                value: f64::NAN,
                range: "a partitionable function (difference/sum/weighted-sum)",
            });
        }
        if self.delta <= Value::ZERO {
            return Err(ConfigError::ZeroTolerance { name: "group delta" });
        }
        // Validate the shared adaptive-TTR parameters once.
        AdaptiveTtrConfig::builder(self.delta)
            .smoothing(self.smoothing)
            .alpha(self.alpha)
            .ttr_bounds(self.ttr_min, self.ttr_max)
            .build()?;
        Ok(PartitionedConfig {
            function: self.function,
            delta: self.delta,
            smoothing: self.smoothing,
            alpha: self.alpha,
            ttr_min: self.ttr_min,
            ttr_max: self.ttr_max,
            repartition_every: self.repartition_every,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct MemberTracker {
    ttr: AdaptiveTtr,
    rate: ValueRateEstimator,
    /// Most recent rate estimate (value units per ms).
    last_rate: Option<f64>,
}

/// The partitioned Mv policy: δ is split into per-object tolerances that
/// each member enforces independently with the §4.1 adaptive TTR.
///
/// Maintaining `|P_a − S_a| < δ_a` and `|P_b − S_b| < δ_b` with
/// `w_a·δ_a + w_b·δ_b = δ` implies the mutual bound by the triangle
/// inequality (§4.2, footnote 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPolicy {
    config: PartitionedConfig,
    weights: (f64, f64),
    a: MemberTracker,
    b: MemberTracker,
    tolerances: (Value, Value),
    polls_since_repartition: u32,
}

impl PartitionedPolicy {
    /// Creates the policy with an initial even split of δ.
    ///
    /// # Panics
    ///
    /// Never panics for configs built via [`PartitionedConfigBuilder`],
    /// which rejects non-partitionable functions.
    pub fn new(config: PartitionedConfig) -> Self {
        let weights = config
            .function
            .lipschitz_weights()
            .expect("PartitionedConfig guarantees a partitionable function");
        let (da, db) = Self::split(config.delta, weights, 0.5);
        let make = |delta: Value| {
            AdaptiveTtrConfig::builder(delta)
                .smoothing(config.smoothing)
                .alpha(config.alpha)
                .ttr_bounds(config.ttr_min, config.ttr_max)
                .build()
                .expect("validated by PartitionedConfigBuilder")
                .into_state()
        };
        PartitionedPolicy {
            a: MemberTracker {
                ttr: make(da),
                rate: ValueRateEstimator::new(),
                last_rate: None,
            },
            b: MemberTracker {
                ttr: make(db),
                rate: ValueRateEstimator::new(),
                last_rate: None,
            },
            tolerances: (da, db),
            polls_since_repartition: 0,
            weights,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PartitionedConfig {
        &self.config
    }

    /// The current per-object tolerances `(δ_a, δ_b)`.
    ///
    /// Invariant: `w_a·δ_a + w_b·δ_b = δ` (up to float rounding).
    pub fn tolerances(&self) -> (Value, Value) {
        self.tolerances
    }

    /// Splits δ so a share `frac_a ∈ (0, 1)` of the *weighted* budget goes
    /// to object A.
    fn split(delta: Value, weights: (f64, f64), frac_a: f64) -> (Value, Value) {
        let budget_a = delta.as_f64() * frac_a;
        let budget_b = delta.as_f64() - budget_a;
        (
            Value::new(budget_a / weights.0),
            Value::new(budget_b / weights.1),
        )
    }

    /// Feeds the value observed by polling one member at `now`; returns
    /// that member's next TTR.
    pub fn on_poll(&mut self, member: PairMember, now: Timestamp, value: Value) -> Duration {
        let tracker = match member {
            PairMember::A => &mut self.a,
            PairMember::B => &mut self.b,
        };
        if let Some(rate) = tracker.rate.observe(now, value) {
            tracker.last_rate = Some(rate);
        }
        // NB: the adaptive TTR keeps its own (timestamp, value) history;
        // feeding it after the rate estimator keeps both in sync.
        let ttr = tracker.ttr.on_poll(now, value);

        self.polls_since_repartition += 1;
        if self.config.repartition_every > 0
            && self.polls_since_repartition >= self.config.repartition_every
        {
            self.repartition();
            self.polls_since_repartition = 0;
        }
        ttr
    }

    /// Re-apportions δ by the latest rate estimates: the faster object
    /// receives the smaller tolerance — δ_a = (r_b / (r_a + r_b))·δ.
    fn repartition(&mut self) {
        let (Some(ra), Some(rb)) = (self.a.last_rate, self.b.last_rate) else {
            return;
        };
        let total = ra + rb;
        if total <= 0.0 {
            return;
        }
        let frac_a = (rb / total).clamp(0.05, 0.95); // keep both positive
        let (da, db) = Self::split(self.config.delta, self.weights, frac_a);
        self.tolerances = (da, db);
        // set_delta validated: split() keeps both tolerances positive.
        self.a.ttr.set_delta(da).expect("positive tolerance");
        self.b.ttr.set_delta(db).expect("positive tolerance");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn virtual_policy(delta: f64) -> VirtualObjectPolicy {
        VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(delta))
            .smoothing(1.0)
            .alpha(1.0)
            .ttr_bounds(Duration::from_secs(1), Duration::from_secs(3_600))
            .build()
            .unwrap()
            .into_policy()
    }

    #[test]
    fn feedback_validation() {
        let bad = |f: FeedbackConfig| {
            VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(1.0))
                .feedback(f)
                .build()
        };
        assert!(bad(FeedbackConfig { decrease: 1.0, ..Default::default() }).is_err());
        assert!(bad(FeedbackConfig { increase: 0.9, ..Default::default() }).is_err());
        assert!(bad(FeedbackConfig { min: 0.0, ..Default::default() }).is_err());
        assert!(bad(FeedbackConfig::default()).is_ok());
    }

    #[test]
    fn virtual_object_tracks_f() {
        let mut p = virtual_policy(0.6);
        let d = p.on_poll(secs(0), Value::new(160.0), Value::new(36.0));
        assert_eq!(d.f_value, Value::new(124.0));
        assert!(!d.violated);
        assert_eq!(p.poll_count(), 1);
        // f drifts slowly: 0.1 in 10 s → TTR = 0.6/0.01 = 60 s.
        let d = p.on_poll(secs(10), Value::new(160.1), Value::new(36.0));
        assert!(!d.violated);
        assert_eq!(d.ttr, Duration::from_secs(60));
    }

    #[test]
    fn virtual_object_detects_violation_and_shrinks_theta() {
        let mut p = virtual_policy(0.6);
        p.on_poll(secs(0), Value::new(160.0), Value::new(36.0)); // f = 124.0
        // f jumps by 1.0 ≥ δ → violation, θ ← 0.7.
        let d = p.on_poll(secs(10), Value::new(161.0), Value::new(36.0));
        assert!(d.violated);
        assert!((d.theta - 0.7).abs() < 1e-12);
        assert_eq!(p.violation_count(), 1);
        // A calm poll grows θ back towards 1.
        let d = p.on_poll(secs(20), Value::new(161.0), Value::new(36.0));
        assert!(!d.violated);
        assert!((d.theta - 0.77).abs() < 1e-12);
    }

    #[test]
    fn theta_floors_and_caps() {
        let mut p = VirtualObjectConfig::builder(ValueFunction::Difference, Value::new(0.1))
            .feedback(FeedbackConfig {
                decrease: 0.1,
                increase: 2.0,
                min: 0.05,
            })
            .build()
            .unwrap()
            .into_policy();
        let mut t = 0;
        // Repeated violations: θ must not go below the floor.
        for i in 0..5 {
            t += 10;
            p.on_poll(secs(t), Value::new(100.0 + i as f64), Value::ZERO);
        }
        assert!(p.theta() >= 0.05);
        // Calm polls: θ must not exceed 1.
        for _ in 0..10 {
            t += 10;
            p.on_poll(secs(t), Value::new(104.0), Value::ZERO);
        }
        assert!((p.theta() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_theta_means_shorter_ttr() {
        let mut calm = virtual_policy(0.6);
        let mut shaken = virtual_policy(0.6);
        calm.on_poll(secs(0), Value::new(160.0), Value::new(36.0));
        shaken.on_poll(secs(0), Value::new(160.0), Value::new(36.0));
        // Inject a violation into `shaken` only.
        shaken.on_poll(secs(5), Value::new(162.0), Value::new(36.0));
        calm.on_poll(secs(5), Value::new(160.05), Value::new(36.0));
        // Same slow drift afterwards; the shaken policy stays more
        // conservative (shorter TTR) because θ < 1.
        let d_calm = calm.on_poll(secs(15), Value::new(160.15), Value::new(36.0));
        let d_shaken = shaken.on_poll(secs(15), Value::new(162.1), Value::new(36.0));
        assert!(d_shaken.ttr < d_calm.ttr);
    }

    #[test]
    fn partitioned_rejects_ratio() {
        assert!(matches!(
            PartitionedConfig::builder(ValueFunction::Ratio, Value::new(1.0)).build(),
            Err(ConfigError::ParameterOutOfRange { name: "function", .. })
        ));
    }

    #[test]
    fn partitioned_initial_split_is_even() {
        let p = PartitionedConfig::builder(ValueFunction::Difference, Value::new(0.6))
            .build()
            .unwrap()
            .into_policy();
        let (da, db) = p.tolerances();
        assert!((da.as_f64() - 0.3).abs() < 1e-12);
        assert!((db.as_f64() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn partitioned_split_respects_weights() {
        let p = PartitionedConfig::builder(
            ValueFunction::WeightedSum { wa: 2.0, wb: 1.0 },
            Value::new(1.0),
        )
        .build()
        .unwrap()
        .into_policy();
        let (da, db) = p.tolerances();
        // w_a·δ_a + w_b·δ_b = 2·0.25 + 1·0.5 = 1.0 = δ.
        assert!((2.0 * da.as_f64() + db.as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partitioned_reapportions_towards_slower_object() {
        let mut p = PartitionedConfig::builder(ValueFunction::Difference, Value::new(1.0))
            .repartition_every(4)
            .ttr_bounds(Duration::from_secs(1), Duration::from_secs(3_600))
            .build()
            .unwrap()
            .into_policy();
        // A changes fast (1.0/10s), B slowly (0.01/10s).
        let mut t = 0;
        for i in 0..6u64 {
            t += 10;
            p.on_poll(PairMember::A, secs(t), Value::new(100.0 + i as f64));
            p.on_poll(PairMember::B, secs(t), Value::new(36.0 + 0.01 * i as f64));
        }
        let (da, db) = p.tolerances();
        // Faster object A must hold the smaller tolerance.
        assert!(da < db, "expected δa < δb, got {da} vs {db}");
        // Budget preserved.
        assert!((da.as_f64() + db.as_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_without_repartition_keeps_split() {
        let mut p = PartitionedConfig::builder(ValueFunction::Difference, Value::new(1.0))
            .repartition_every(0)
            .build()
            .unwrap()
            .into_policy();
        let before = p.tolerances();
        let mut t = 0;
        for i in 0..10u64 {
            t += 10;
            p.on_poll(PairMember::A, secs(t), Value::new(100.0 + i as f64));
            p.on_poll(PairMember::B, secs(t), Value::new(36.0));
        }
        assert_eq!(p.tolerances(), before);
    }

    #[test]
    fn partitioned_ttrs_within_bounds() {
        let lo = Duration::from_secs(2);
        let hi = Duration::from_secs(500);
        let mut p = PartitionedConfig::builder(ValueFunction::Difference, Value::new(0.5))
            .ttr_bounds(lo, hi)
            .build()
            .unwrap()
            .into_policy();
        let mut t = 0;
        for i in 0..50u64 {
            t += 3 + i % 5;
            let ta = p.on_poll(PairMember::A, secs(t), Value::new(100.0 + (i % 7) as f64));
            let tb = p.on_poll(PairMember::B, secs(t), Value::new(36.0 + (i % 3) as f64 * 0.01));
            assert!(ta >= lo && ta <= hi);
            assert!(tb >= lo && tb <= hi);
        }
    }
}
