//! Mutual-consistency coordination across groups of related objects.
//!
//! The paper keeps a clean separation between *individual* consistency
//! (Δt/Δv, one object versus its server copy) and *mutual* consistency
//! (Mt/Mv, related objects versus one another): any individual mechanism
//! can be augmented with a mutual coordinator. This module provides the
//! coordinators:
//!
//! * [`temporal`] — Mt-consistency over LIMD (§3.2): triggered polls and
//!   the update-rate heuristic.
//! * [`value`] — Mv-consistency over adaptive TTR (§4.2): the
//!   virtual-object approach and the partitioned-tolerance approach.

pub mod temporal;
pub mod value;
