//! The adaptive-TTR algorithm for Δv-consistency in the value domain
//! (§4.1; originally from Srinivasan et al., RTSS'98 — the paper's
//! reference \[8\]).
//!
//! The proxy must refresh a cached value every time the server copy drifts
//! by Δ. It cannot see the drift without polling, so it *extrapolates*:
//! from the two most recent samples it computes the observed rate of
//! change `r = |P_cur − P_prev| / (t_cur − t_prev)` (Figure 2) and
//! schedules the next poll when the value, continuing at that rate, would
//! reach the tolerance:
//!
//! ```text
//! TTR_est = Δ / r                                    (Equation 9)
//! ```
//!
//! Two refinements tame the raw estimate:
//!
//! * **Exponential smoothing** — `TTR ← w · TTR_est + (1 − w) · TTR_prev`,
//!   damping reaction to a single noisy sample.
//! * **The α-blend with the most aggressive TTR seen so far**
//!   (Equation 10):
//!
//! ```text
//! TTR = max(TTR_min, min(TTR_max, α·TTR + (1−α)·TTR_observed_min))
//! ```
//!
//! Small α biases the result towards the smallest (most conservative) TTR
//! the object has ever required — the paper's knob for data with poor
//! temporal locality.
//!
//! ```
//! use mutcon_core::adaptive_ttr::AdaptiveTtrConfig;
//! use mutcon_core::time::{Duration, Timestamp};
//! use mutcon_core::value::Value;
//!
//! # fn main() -> Result<(), mutcon_core::error::ConfigError> {
//! let mut ttr = AdaptiveTtrConfig::builder(Value::new(0.5))
//!     .ttr_bounds(Duration::from_secs(5), Duration::from_secs(600))
//!     .build()?
//!     .into_state();
//!
//! ttr.on_poll(Timestamp::from_secs(0), Value::new(36.00));
//! // 0.10 drift over 60 s ⇒ r ≈ 0.00167/s ⇒ Δ/r = 300 s to drift 0.5.
//! let d = ttr.on_poll(Timestamp::from_secs(60), Value::new(36.10));
//! assert!(d > Duration::from_secs(5));
//! # Ok(())
//! # }
//! ```


use crate::error::ConfigError;
use crate::rate::ValueRateEstimator;
use crate::time::{Duration, Timestamp};
use crate::value::Value;

/// Validated configuration for the value-domain adaptive-TTR algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTtrConfig {
    delta: Value,
    smoothing: f64,
    alpha: f64,
    ttr_min: Duration,
    ttr_max: Duration,
}

impl AdaptiveTtrConfig {
    /// Starts building a configuration for value tolerance `delta`.
    ///
    /// Defaults: smoothing weight `w = 0.5`, blend `α = 0.5`, TTR bounds
    /// `[1 s, 10 min]`.
    pub fn builder(delta: Value) -> AdaptiveTtrConfigBuilder {
        AdaptiveTtrConfigBuilder {
            delta,
            smoothing: 0.5,
            alpha: 0.5,
            ttr_min: Duration::from_secs(1),
            ttr_max: Duration::from_mins(10),
        }
    }

    /// The Δv tolerance.
    pub fn delta(&self) -> Value {
        self.delta
    }

    /// Smoothing weight `w` given to the newest raw estimate.
    pub fn smoothing(&self) -> f64 {
        self.smoothing
    }

    /// Blend factor `α` between the smoothed TTR and the smallest observed
    /// TTR (Equation 10).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower TTR bound.
    pub fn ttr_min(&self) -> Duration {
        self.ttr_min
    }

    /// Upper TTR bound.
    pub fn ttr_max(&self) -> Duration {
        self.ttr_max
    }

    /// Consumes the configuration into a ready-to-drive state machine.
    pub fn into_state(self) -> AdaptiveTtr {
        AdaptiveTtr::new(self)
    }
}

/// Builder for [`AdaptiveTtrConfig`].
#[derive(Debug, Clone)]
pub struct AdaptiveTtrConfigBuilder {
    delta: Value,
    smoothing: f64,
    alpha: f64,
    ttr_min: Duration,
    ttr_max: Duration,
}

impl AdaptiveTtrConfigBuilder {
    /// Sets the smoothing weight `w ∈ [0, 1]` for the newest estimate.
    pub fn smoothing(mut self, w: f64) -> Self {
        self.smoothing = w;
        self
    }

    /// Sets the blend factor `α ∈ [0, 1]`; smaller is more conservative.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets both TTR bounds.
    pub fn ttr_bounds(mut self, min: Duration, max: Duration) -> Self {
        self.ttr_min = min;
        self.ttr_max = max;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if Δ is not positive, a weight is outside
    /// `[0, 1]`, or the TTR bounds are empty or inverted.
    pub fn build(self) -> Result<AdaptiveTtrConfig, ConfigError> {
        if self.delta <= Value::ZERO {
            return Err(ConfigError::ZeroTolerance { name: "delta" });
        }
        if !(0.0..=1.0).contains(&self.smoothing) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "w",
                value: self.smoothing,
                range: "[0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "alpha",
                value: self.alpha,
                range: "[0, 1]",
            });
        }
        if self.ttr_min.is_zero() {
            return Err(ConfigError::ZeroTolerance { name: "ttr_min" });
        }
        if self.ttr_min > self.ttr_max {
            return Err(ConfigError::InvalidTtrBounds {
                min: self.ttr_min,
                max: self.ttr_max,
            });
        }
        Ok(AdaptiveTtrConfig {
            delta: self.delta,
            smoothing: self.smoothing,
            alpha: self.alpha,
            ttr_min: self.ttr_min,
            ttr_max: self.ttr_max,
        })
    }
}

/// Adaptive Δv-consistency state for one value-bearing object.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTtr {
    config: AdaptiveTtrConfig,
    rate: ValueRateEstimator,
    /// Previous smoothed TTR, in ms (None until the second poll).
    smoothed_ms: Option<f64>,
    /// Smallest raw TTR estimate seen so far, in ms.
    observed_min_ms: Option<f64>,
    current_ttr: Duration,
}

impl AdaptiveTtr {
    /// Creates a fresh state machine; until two samples arrive the TTR is
    /// `TTR_min` (poll conservatively while nothing is known).
    pub fn new(config: AdaptiveTtrConfig) -> Self {
        AdaptiveTtr {
            current_ttr: config.ttr_min,
            config,
            rate: ValueRateEstimator::new(),
            smoothed_ms: None,
            observed_min_ms: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveTtrConfig {
        &self.config
    }

    /// The TTR separating the latest poll from the next one.
    pub fn current_ttr(&self) -> Duration {
        self.current_ttr
    }

    /// Replaces the tolerance Δ, keeping the learned rate state.
    ///
    /// Used by the partitioned Mv approach (§4.2), which periodically
    /// re-apportions the group tolerance δ between the member objects as
    /// their relative rates of change shift.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroTolerance`] if `delta` is not positive.
    pub fn set_delta(&mut self, delta: Value) -> Result<(), ConfigError> {
        if delta <= Value::ZERO {
            return Err(ConfigError::ZeroTolerance { name: "delta" });
        }
        self.config.delta = delta;
        Ok(())
    }

    /// The smallest raw TTR estimate observed so far.
    pub fn observed_min(&self) -> Option<Duration> {
        self.observed_min_ms
            .map(|ms| Duration::from_millis(ms.round() as u64))
    }

    /// Feeds the value observed by a poll at `now`; returns the new TTR.
    ///
    /// The TTR is computed with `scale = 1`; use
    /// [`AdaptiveTtr::on_poll_scaled`] to apply a feedback factor (used by
    /// the Mv virtual-object policy, Equation 12).
    pub fn on_poll(&mut self, now: Timestamp, value: Value) -> Duration {
        self.on_poll_scaled(now, value, 1.0)
    }

    /// Like [`AdaptiveTtr::on_poll`], but multiplies the raw `Δ / r`
    /// estimate by `scale` before smoothing — the `θ` feedback factor of
    /// Equation 12 (`0 < θ ≤ 1`).
    pub fn on_poll_scaled(&mut self, now: Timestamp, value: Value, scale: f64) -> Duration {
        debug_assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let Some(rate) = self.rate.observe(now, value) else {
            // First sample (or repeated timestamp): stay conservative.
            self.current_ttr = self.config.ttr_min;
            return self.current_ttr;
        };

        // Equation 9: Δ / r, i.e. time for the value to drift by Δ at the
        // observed rate. A zero rate means "no drift observed": optimistic
        // estimate capped by TTR_max.
        let raw_ms = if rate <= 0.0 {
            self.config.ttr_max.as_millis() as f64
        } else {
            (self.config.delta.as_f64() / rate) * scale
        };

        // Exponential smoothing against the previous estimate.
        let smoothed = match self.smoothed_ms {
            None => raw_ms,
            Some(prev) => self.config.smoothing * raw_ms + (1.0 - self.config.smoothing) * prev,
        };
        self.smoothed_ms = Some(smoothed);

        // Track the most aggressive estimate ever required.
        let observed_min = match self.observed_min_ms {
            None => raw_ms,
            Some(min) => min.min(raw_ms),
        };
        self.observed_min_ms = Some(observed_min);

        // Equation 10: α-blend, then clamp.
        let blended = self.config.alpha * smoothed + (1.0 - self.config.alpha) * observed_min;
        self.current_ttr = Duration::from_secs_f64(blended / 1_000.0)
            .clamp(self.config.ttr_min, self.config.ttr_max);
        self.current_ttr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(delta: f64) -> AdaptiveTtrConfig {
        AdaptiveTtrConfig::builder(Value::new(delta))
            .smoothing(1.0) // no smoothing: raw estimates pass through
            .alpha(1.0) // no blending with observed min
            .ttr_bounds(Duration::from_secs(1), Duration::from_secs(3_600))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            AdaptiveTtrConfig::builder(Value::ZERO).build(),
            Err(ConfigError::ZeroTolerance { .. })
        ));
        assert!(matches!(
            AdaptiveTtrConfig::builder(Value::new(1.0)).smoothing(1.5).build(),
            Err(ConfigError::ParameterOutOfRange { name: "w", .. })
        ));
        assert!(matches!(
            AdaptiveTtrConfig::builder(Value::new(1.0)).alpha(-0.1).build(),
            Err(ConfigError::ParameterOutOfRange { name: "alpha", .. })
        ));
        assert!(matches!(
            AdaptiveTtrConfig::builder(Value::new(1.0))
                .ttr_bounds(Duration::from_secs(10), Duration::from_secs(1))
                .build(),
            Err(ConfigError::InvalidTtrBounds { .. })
        ));
        assert!(matches!(
            AdaptiveTtrConfig::builder(Value::new(1.0))
                .ttr_bounds(Duration::ZERO, Duration::from_secs(1))
                .build(),
            Err(ConfigError::ZeroTolerance { name: "ttr_min" })
        ));
    }

    #[test]
    fn first_poll_stays_at_ttr_min() {
        let mut s = cfg(0.5).into_state();
        let d = s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        assert_eq!(d, Duration::from_secs(1));
    }

    #[test]
    fn equation_9_extrapolation() {
        let mut s = cfg(0.5).into_state();
        s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        // Drift 0.1 in 10 s ⇒ r = 0.01/s ⇒ TTR = 0.5 / 0.01 = 50 s.
        let d = s.on_poll(Timestamp::from_secs(10), Value::new(100.1));
        assert_eq!(d, Duration::from_secs(50));
    }

    #[test]
    fn zero_rate_is_optimistic() {
        let mut s = cfg(0.5).into_state();
        s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        let d = s.on_poll(Timestamp::from_secs(10), Value::new(100.0));
        assert_eq!(d, Duration::from_secs(3_600)); // ttr_max
    }

    #[test]
    fn fast_drift_clamps_to_ttr_min() {
        let mut s = cfg(0.5).into_state();
        s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        // Drift 100 in 1 s ⇒ TTR = 0.005 s, clamped to 1 s.
        let d = s.on_poll(Timestamp::from_secs(1), Value::new(200.0));
        assert_eq!(d, Duration::from_secs(1));
    }

    #[test]
    fn smoothing_damps_spikes() {
        let c = AdaptiveTtrConfig::builder(Value::new(0.5))
            .smoothing(0.5)
            .alpha(1.0)
            .ttr_bounds(Duration::from_secs(1), Duration::from_secs(10_000))
            .build()
            .unwrap();
        let mut s = c.into_state();
        s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        // Steady drift: raw = 50 s; smoothed = 50 s.
        s.on_poll(Timestamp::from_secs(10), Value::new(100.1));
        // Sudden stillness: raw = ttr_max = 10_000 s;
        // smoothed = 0.5·10_000 + 0.5·50 = 5_025 s.
        let d = s.on_poll(Timestamp::from_secs(20), Value::new(100.1));
        assert_eq!(d, Duration::from_secs(5_025));
    }

    #[test]
    fn alpha_blend_pulls_towards_observed_min() {
        let c = AdaptiveTtrConfig::builder(Value::new(0.5))
            .smoothing(1.0)
            .alpha(0.0) // fully conservative: always the observed min
            .ttr_bounds(Duration::from_secs(1), Duration::from_secs(10_000))
            .build()
            .unwrap();
        let mut s = c.into_state();
        s.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        // Fast drift: raw = 5 s → observed min = 5 s.
        s.on_poll(Timestamp::from_secs(10), Value::new(101.0));
        assert_eq!(s.observed_min(), Some(Duration::from_secs(5)));
        // Slow drift afterwards: raw = 500 s, but α = 0 keeps TTR at 5 s.
        let d = s.on_poll(Timestamp::from_secs(20), Value::new(101.01));
        assert_eq!(d, Duration::from_secs(5));
    }

    #[test]
    fn scale_shrinks_estimate() {
        let mut a = cfg(0.5).into_state();
        let mut b = cfg(0.5).into_state();
        a.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        b.on_poll(Timestamp::from_secs(0), Value::new(100.0));
        let full = a.on_poll_scaled(Timestamp::from_secs(10), Value::new(100.1), 1.0);
        let half = b.on_poll_scaled(Timestamp::from_secs(10), Value::new(100.1), 0.5);
        assert_eq!(full, Duration::from_secs(50));
        assert_eq!(half, Duration::from_secs(25));
    }

    #[test]
    fn ttr_always_within_bounds() {
        let mut s = AdaptiveTtrConfig::builder(Value::new(0.25))
            .smoothing(0.7)
            .alpha(0.3)
            .ttr_bounds(Duration::from_secs(2), Duration::from_secs(120))
            .build()
            .unwrap()
            .into_state();
        let mut t = Timestamp::ZERO;
        let mut v = 100.0;
        for i in 0..200 {
            t += Duration::from_secs(1 + (i % 7));
            v += if i % 3 == 0 { 0.8 } else { -0.05 };
            let d = s.on_poll(t, Value::new(v));
            assert!(d >= Duration::from_secs(2) && d <= Duration::from_secs(120));
        }
    }
}
