//! Numeric values for value-domain consistency.
//!
//! Value-domain semantics (Δv, Mv) apply to objects that *have a value* —
//! stock prices, sports scores, weather readings (§2). [`Value`] is a thin
//! newtype over `f64` that adds a total order (needed to keep values in
//! sorted containers and to take min/max over traces) while rejecting NaN
//! at construction, so the order is genuinely total.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};


/// A finite numeric value of a web object (e.g. a stock price in dollars).
///
/// `Value` is totally ordered; construction rejects NaN (and the arithmetic
/// operators debug-assert finiteness) so comparisons never silently
/// misbehave.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Value(f64);

impl Value {
    /// Zero.
    pub const ZERO: Value = Value(0.0);

    /// Creates a value, returning `None` for NaN or infinite inputs.
    pub fn checked_new(v: f64) -> Option<Value> {
        v.is_finite().then_some(Value(v))
    }

    /// Creates a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or infinite.
    pub fn new(v: f64) -> Value {
        Value::checked_new(v).unwrap_or_else(|| panic!("value must be finite, got {v}"))
    }

    /// The underlying float.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Absolute difference `|self − other|`.
    pub fn abs_diff(self, other: Value) -> Value {
        Value((self.0 - other.0).abs())
    }

    /// Absolute value.
    pub fn abs(self) -> Value {
        Value(self.0.abs())
    }

    /// The smaller of two values.
    pub fn min(self, other: Value) -> Value {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    pub fn max(self, other: Value) -> Value {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Value {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction rejects NaN, so partial_cmp is always Some.
        self.partial_cmp(other).expect("Value is never NaN")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::new(v)
    }
}

impl From<Value> for f64 {
    fn from(v: Value) -> f64 {
        v.0
    }
}

macro_rules! value_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Value {
            type Output = Value;

            fn $method(self, rhs: Value) -> Value {
                let out = self.0 $op rhs.0;
                debug_assert!(out.is_finite(), "value arithmetic overflowed: {out}");
                Value(out)
            }
        }
    };
}

value_binop!(Add, add, +);
value_binop!(Sub, sub, -);
value_binop!(Mul, mul, *);
value_binop!(Div, div, /);

impl Neg for Value {
    type Output = Value;

    fn neg(self) -> Value {
        Value(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_finite() {
        assert!(Value::checked_new(f64::NAN).is_none());
        assert!(Value::checked_new(f64::INFINITY).is_none());
        assert!(Value::checked_new(1.25).is_some());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_panics_on_nan() {
        let _ = Value::new(f64::NAN);
    }

    #[test]
    fn total_order_and_minmax() {
        let a = Value::new(1.0);
        let b = Value::new(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let mut v = vec![b, a];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }

    #[test]
    fn arithmetic_and_diff() {
        let a = Value::new(160.5);
        let b = Value::new(36.25);
        assert_eq!((a - b).as_f64(), 124.25);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!((-b).abs(), b);
        assert_eq!((a + Value::ZERO), a);
        assert_eq!((a * Value::new(2.0)).as_f64(), 321.0);
        assert_eq!((a / Value::new(2.0)).as_f64(), 80.25);
    }

    #[test]
    fn conversions_and_display() {
        let v = Value::from(3.5);
        let f: f64 = v.into();
        assert_eq!(f, 3.5);
        assert_eq!(v.to_string(), "3.5000");
    }
}
