//! The LIMD (linear-increase multiplicative-decrease) adaptive TTR
//! algorithm for Δt-consistency (§3.1).
//!
//! A proxy can trivially guarantee Δt-consistency by polling every Δ time
//! units, but that is wasteful when the object changes less often than Δ.
//! LIMD *probes* for the object's actual rate of change, in the spirit of
//! TCP congestion control: the time-to-refresh (TTR) grows linearly while
//! no updates are missed and collapses multiplicatively when a consistency
//! violation is detected.
//!
//! The algorithm computes each new TTR from **only the two most recent
//! polls** — a deliberate design point of the paper (minimal proxy state,
//! trivial crash recovery: reset every TTR to `TTR_min`).
//!
//! The four cases of §3.1, applied after every poll:
//!
//! 1. **Unchanged** — `TTR ← TTR · (1 + l)`, gradual linear-ish growth
//!    towards `TTR_max`.
//! 2. **Changed, guarantee violated** — `TTR ← TTR · m`, exponential
//!    back-off towards `TTR_min` under successive violations.
//! 3. **Changed, no violation** — `TTR ← TTR · (1 + ε)` for a small ε:
//!    the proxy is polling at roughly the right frequency and only
//!    fine-tunes.
//! 4. **Changed after a long idle period** — `TTR ← TTR_min`: a cold
//!    object has become hot; restart probing from the most conservative
//!    setting.
//!
//! Every TTR is clamped into `[TTR_min, TTR_max]`, with `TTR_min = Δ` by
//! default (the minimum poll spacing that can still maintain the bound).
//!
//! # Violation detection
//!
//! A violation means the *first* update since the previous poll happened
//! more than Δ before the current poll (Figure 1). Plain HTTP reports only
//! the most recent `Last-Modified`, which misses the multi-update case of
//! Figure 1(b); the paper's proposed protocol extension (§5.1) supplies a
//! modification history that makes detection exact. [`PollResult`] carries
//! an optional history so both modes are expressible, and the choice is an
//! ablation axis in the benchmark suite.
//!
//! ```
//! use mutcon_core::limd::{Limd, LimdConfig, PollResult};
//! use mutcon_core::time::{Duration, Timestamp};
//!
//! # fn main() -> Result<(), mutcon_core::error::ConfigError> {
//! let config = LimdConfig::builder(Duration::from_mins(10))
//!     .linear_increase(0.2)
//!     .ttr_max(Duration::from_mins(60))
//!     .build()?;
//! let mut limd = Limd::new(config);
//!
//! // First poll at t = 10min: nothing changed → TTR grows by 20%.
//! let d = limd.on_poll(Timestamp::from_mins(10), &PollResult::NotModified);
//! assert_eq!(d.ttr, Duration::from_mins(12));
//! # Ok(())
//! # }
//! ```

use std::fmt;


use crate::error::ConfigError;
use crate::time::{Duration, Timestamp};

/// How the multiplicative-decrease factor `m` is chosen when a violation
/// is detected (Case 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecreaseFactor {
    /// A fixed factor in `(0, 1)`.
    Fixed(f64),
    /// The rule used in the paper's evaluation (§6.2.1): `m` is the ratio
    /// of Δ to the observed out-of-sync span (current poll − first missed
    /// update). Bigger misses shrink the TTR harder. The ratio is clamped
    /// into `[floor, ceiling]` to keep the state well-behaved.
    DeltaOverOutSync {
        /// Smallest admissible factor (guards against collapse to zero).
        floor: f64,
        /// Largest admissible factor (must stay below one to decrease).
        ceiling: f64,
    },
}

impl DecreaseFactor {
    /// The paper's adaptive rule with sensible clamps.
    pub const PAPER: DecreaseFactor = DecreaseFactor::DeltaOverOutSync {
        floor: 0.05,
        ceiling: 0.95,
    };

    fn validate(self) -> Result<(), ConfigError> {
        match self {
            DecreaseFactor::Fixed(m) => {
                if !(m > 0.0 && m < 1.0) {
                    return Err(ConfigError::ParameterOutOfRange {
                        name: "m",
                        value: m,
                        range: "(0, 1)",
                    });
                }
            }
            DecreaseFactor::DeltaOverOutSync { floor, ceiling } => {
                if !(floor > 0.0 && floor < 1.0) {
                    return Err(ConfigError::ParameterOutOfRange {
                        name: "m.floor",
                        value: floor,
                        range: "(0, 1)",
                    });
                }
                if !(ceiling > 0.0 && ceiling < 1.0) || ceiling < floor {
                    return Err(ConfigError::ParameterOutOfRange {
                        name: "m.ceiling",
                        value: ceiling,
                        range: "[floor, 1)",
                    });
                }
            }
        }
        Ok(())
    }
}

/// Validated configuration for the LIMD algorithm.
///
/// Build one through [`LimdConfig::builder`]; Δ is mandatory, everything
/// else has paper defaults (`l = 0.2`, adaptive `m`, `ε = 0.02`,
/// `TTR_min = Δ`, `TTR_max = 60 min`, idle threshold `TTR_max`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimdConfig {
    delta: Duration,
    linear_increase: f64,
    decrease: DecreaseFactor,
    epsilon: f64,
    ttr_min: Duration,
    ttr_max: Duration,
    idle_threshold: Duration,
}

impl LimdConfig {
    /// Starts building a configuration for Δt tolerance `delta`.
    pub fn builder(delta: Duration) -> LimdConfigBuilder {
        LimdConfigBuilder {
            delta,
            linear_increase: 0.2,
            decrease: DecreaseFactor::PAPER,
            epsilon: 0.02,
            ttr_min: None,
            ttr_max: Duration::from_mins(60),
            idle_threshold: None,
        }
    }

    /// The Δt tolerance this instance maintains.
    pub fn delta(&self) -> Duration {
        self.delta
    }

    /// Linear growth factor `l`.
    pub fn linear_increase(&self) -> f64 {
        self.linear_increase
    }

    /// Multiplicative decrease rule `m`.
    pub fn decrease(&self) -> DecreaseFactor {
        self.decrease
    }

    /// Fine-tuning factor `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Lower TTR bound.
    pub fn ttr_min(&self) -> Duration {
        self.ttr_min
    }

    /// Upper TTR bound.
    pub fn ttr_max(&self) -> Duration {
        self.ttr_max
    }

    /// Quiet spell after which a fresh update triggers the Case-4 reset.
    pub fn idle_threshold(&self) -> Duration {
        self.idle_threshold
    }

    /// Serializes the configuration to its canonical one-line spec form:
    /// comma-separated `key=value` pairs, e.g.
    ///
    /// ```text
    /// delta_ms=600000,l=0.2,m=adaptive:0.05:0.95,eps=0.02,ttr_min_ms=600000,ttr_max_ms=3600000,idle_ms=3600000
    /// ```
    ///
    /// The decrease rule is `m=fixed:M` or `m=adaptive:FLOOR:CEILING`.
    /// [`LimdConfig::from_spec`] round-trips this exactly; control planes
    /// (the live proxy's admin API) ship configs over the wire in this
    /// form.
    pub fn to_spec(&self) -> String {
        let m = match self.decrease {
            DecreaseFactor::Fixed(m) => format!("fixed:{m}"),
            DecreaseFactor::DeltaOverOutSync { floor, ceiling } => {
                format!("adaptive:{floor}:{ceiling}")
            }
        };
        format!(
            "delta_ms={},l={},m={m},eps={},ttr_min_ms={},ttr_max_ms={},idle_ms={}",
            self.delta.as_millis(),
            self.linear_increase,
            self.epsilon,
            self.ttr_min.as_millis(),
            self.ttr_max.as_millis(),
            self.idle_threshold.as_millis(),
        )
    }

    /// Parses a configuration from the spec form written by
    /// [`LimdConfig::to_spec`]. `delta_ms` is mandatory; every other key
    /// defaults as in [`LimdConfig::builder`]. Unknown keys are rejected
    /// (a typo must not silently fall back to a default).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidSpec`] for malformed text and the
    /// usual validation errors for out-of-range values.
    pub fn from_spec(spec: &str) -> Result<LimdConfig, ConfigError> {
        fn bad(message: impl Into<String>) -> ConfigError {
            ConfigError::InvalidSpec {
                message: message.into(),
            }
        }
        fn ms(value: &str, key: &str) -> Result<Duration, ConfigError> {
            value
                .parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| bad(format!("`{key}` must be an integer millisecond count")))
        }
        fn factor(value: &str, key: &str) -> Result<f64, ConfigError> {
            value
                .parse::<f64>()
                .map_err(|_| bad(format!("`{key}` must be a number")))
        }

        let mut pending: Vec<(String, String)> = Vec::new();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| bad(format!("`{pair}` is not a key=value pair")))?;
            let (key, value) = (key.trim(), value.trim());
            if pending.iter().any(|(k, _)| k == key) {
                // Same strictness as unknown keys: a duplicated key is
                // a mangled spec, not a silent last-wins.
                return Err(bad(format!("duplicate key `{key}`")));
            }
            pending.push((key.to_owned(), value.to_owned()));
        }
        let delta_at = pending
            .iter()
            .position(|(k, _)| k == "delta_ms")
            .ok_or_else(|| bad("missing mandatory `delta_ms`"))?;
        let (_, delta_value) = pending.remove(delta_at);
        let mut builder = LimdConfig::builder(ms(&delta_value, "delta_ms")?);
        for (key, value) in pending {
            builder = match key.as_str() {
                "l" => builder.linear_increase(factor(&value, &key)?),
                "eps" => builder.epsilon(factor(&value, &key)?),
                "ttr_min_ms" => builder.ttr_min(ms(&value, &key)?),
                "ttr_max_ms" => builder.ttr_max(ms(&value, &key)?),
                "idle_ms" => builder.idle_threshold(ms(&value, &key)?),
                "m" => {
                    let mut parts = value.split(':');
                    let rule = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                        (Some("fixed"), Some(m), None, None) => {
                            DecreaseFactor::Fixed(factor(m, "m")?)
                        }
                        (Some("adaptive"), Some(floor), Some(ceiling), None) => {
                            DecreaseFactor::DeltaOverOutSync {
                                floor: factor(floor, "m.floor")?,
                                ceiling: factor(ceiling, "m.ceiling")?,
                            }
                        }
                        _ => {
                            return Err(bad(
                                "`m` must be `fixed:M` or `adaptive:FLOOR:CEILING`",
                            ))
                        }
                    };
                    builder.decrease(rule)
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            };
        }
        builder.build()
    }
}

/// Builder for [`LimdConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct LimdConfigBuilder {
    delta: Duration,
    linear_increase: f64,
    decrease: DecreaseFactor,
    epsilon: f64,
    ttr_min: Option<Duration>,
    ttr_max: Duration,
    idle_threshold: Option<Duration>,
}

impl LimdConfigBuilder {
    /// Sets the linear growth factor `l` (`0 < l < 1`). A large `l` makes
    /// the proxy *optimistic*: TTR climbs aggressively between updates.
    pub fn linear_increase(mut self, l: f64) -> Self {
        self.linear_increase = l;
        self
    }

    /// Sets the multiplicative decrease rule. A small fixed `m` makes the
    /// proxy *conservative*: it backs off hard after a violation.
    pub fn decrease(mut self, m: DecreaseFactor) -> Self {
        self.decrease = m;
        self
    }

    /// Sets the fine-tuning factor `ε ≥ 0` applied when an update is seen
    /// without a violation.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides `TTR_min` (defaults to Δ, the minimum spacing needed to
    /// maintain the guarantee).
    pub fn ttr_min(mut self, ttr_min: Duration) -> Self {
        self.ttr_min = Some(ttr_min);
        self
    }

    /// Sets `TTR_max`.
    pub fn ttr_max(mut self, ttr_max: Duration) -> Self {
        self.ttr_max = ttr_max;
        self
    }

    /// Sets the idle spell that arms the Case-4 reset (defaults to
    /// `TTR_max`).
    pub fn idle_threshold(mut self, idle: Duration) -> Self {
        self.idle_threshold = Some(idle);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if Δ is zero, a factor is outside its
    /// admissible range, or `TTR_min > TTR_max`.
    pub fn build(self) -> Result<LimdConfig, ConfigError> {
        if self.delta.is_zero() {
            return Err(ConfigError::ZeroTolerance { name: "delta" });
        }
        if !(self.linear_increase > 0.0 && self.linear_increase < 1.0) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "l",
                value: self.linear_increase,
                range: "(0, 1)",
            });
        }
        self.decrease.validate()?;
        if !(self.epsilon >= 0.0 && self.epsilon.is_finite()) {
            return Err(ConfigError::ParameterOutOfRange {
                name: "epsilon",
                value: self.epsilon,
                range: "[0, ∞)",
            });
        }
        let ttr_min = self.ttr_min.unwrap_or(self.delta);
        if ttr_min > self.ttr_max {
            return Err(ConfigError::InvalidTtrBounds {
                min: ttr_min,
                max: self.ttr_max,
            });
        }
        if ttr_min.is_zero() {
            return Err(ConfigError::ZeroTolerance { name: "ttr_min" });
        }
        Ok(LimdConfig {
            delta: self.delta,
            linear_increase: self.linear_increase,
            decrease: self.decrease,
            epsilon: self.epsilon,
            ttr_min,
            ttr_max: self.ttr_max,
            idle_threshold: self.idle_threshold.unwrap_or(self.ttr_max),
        })
    }
}

/// What the proxy learned from one `If-Modified-Since` poll.
#[derive(Debug, Clone, PartialEq)]
pub enum PollResult {
    /// `304 Not Modified`: no server update since the previous poll.
    NotModified,
    /// `200 OK` with a fresh copy.
    Modified {
        /// The new copy's `Last-Modified` stamp (its version creation
        /// time).
        last_modified: Timestamp,
        /// Modification times since the previous poll, oldest first, when
        /// the server implements the §5.1 history extension. `None` on a
        /// plain HTTP server.
        history: Option<Vec<Timestamp>>,
    },
}

impl PollResult {
    /// Convenience constructor for a plain-HTTP modified response.
    pub fn modified(last_modified: Timestamp) -> Self {
        PollResult::Modified {
            last_modified,
            history: None,
        }
    }

    /// Convenience constructor for a modified response carrying the
    /// modification-history extension.
    pub fn modified_with_history(
        last_modified: Timestamp,
        history: impl IntoIterator<Item = Timestamp>,
    ) -> Self {
        PollResult::Modified {
            last_modified,
            history: Some(history.into_iter().collect()),
        }
    }

    /// This result as a borrowed [`PollView`] (the zero-copy form the
    /// algorithms consume).
    pub fn as_view(&self) -> PollView<'_> {
        match self {
            PollResult::NotModified => PollView::NotModified,
            PollResult::Modified {
                last_modified,
                history,
            } => PollView::Modified {
                last_modified: *last_modified,
                history: history.as_deref(),
            },
        }
    }
}

/// A borrowed view of one poll's outcome.
///
/// This is the form the hot simulation path uses: the modification
/// history stays a slice borrowed from the origin's trace, so driving
/// [`Limd::observe`] (and the Mt coordinator) allocates nothing per
/// poll. [`PollResult`] is the owned equivalent for callers that need to
/// store results; `result.as_view()` converts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PollView<'a> {
    /// `304 Not Modified`: no server update since the previous poll.
    NotModified,
    /// `200 OK` with a fresh copy.
    Modified {
        /// The new copy's `Last-Modified` stamp.
        last_modified: Timestamp,
        /// Modification times since the previous poll, oldest first,
        /// borrowed from the server's history (§5.1 extension).
        history: Option<&'a [Timestamp]>,
    },
}

/// Which of the four §3.1 cases a poll fell into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimdCase {
    /// Case 1: not modified since the last poll.
    Unchanged,
    /// Case 2: modified and the Δ bound was (detectably) violated.
    Violation,
    /// Case 3: modified with no violation.
    InSync,
    /// Case 4: modified after a long quiet spell; TTR reset.
    IdleReset,
}

impl fmt::Display for LimdCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LimdCase::Unchanged => "unchanged",
            LimdCase::Violation => "violation",
            LimdCase::InSync => "in-sync",
            LimdCase::IdleReset => "idle-reset",
        };
        f.write_str(s)
    }
}

/// The outcome of feeding one poll to [`Limd::on_poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimdDecision {
    /// Which §3.1 case applied.
    pub case: LimdCase,
    /// The new TTR; the next poll should happen this long after the poll
    /// that produced the decision.
    pub ttr: Duration,
    /// Span by which the guarantee was missed (zero unless
    /// `case == Violation`): current poll − first missed update − Δ.
    pub overshoot: Duration,
}

/// Adaptive Δt-consistency state for a single object.
///
/// Drive it by calling [`Limd::on_poll`] after every poll; schedule the
/// next poll [`LimdDecision::ttr`] later.
#[derive(Debug, Clone, PartialEq)]
pub struct Limd {
    config: LimdConfig,
    ttr: Duration,
    last_poll: Option<Timestamp>,
    /// Most recent modification time the proxy knows of.
    last_known_modification: Option<Timestamp>,
}

impl Limd {
    /// Creates a fresh instance; the initial TTR is `TTR_min` (the
    /// algorithm "begins by polling the server using a TTR value of Δ").
    pub fn new(config: LimdConfig) -> Self {
        Limd {
            ttr: config.ttr_min,
            config,
            last_poll: None,
            last_known_modification: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LimdConfig {
        &self.config
    }

    /// The TTR that will separate the previous poll from the next one.
    pub fn current_ttr(&self) -> Duration {
        self.ttr
    }

    /// Time of the most recent poll fed to [`Limd::on_poll`].
    pub fn last_poll(&self) -> Option<Timestamp> {
        self.last_poll
    }

    /// Most recent server modification time this instance has learned of.
    pub fn last_known_modification(&self) -> Option<Timestamp> {
        self.last_known_modification
    }

    /// Restores the state used after a proxy failure: TTR back to
    /// `TTR_min`, history forgotten (§3.1: "recovering from a proxy
    /// failure simply involves resetting the TTRs of all objects to
    /// TTR_min").
    pub fn reset(&mut self) {
        self.ttr = self.config.ttr_min;
        self.last_poll = None;
        self.last_known_modification = None;
    }

    /// Feeds the outcome of a poll performed at `now` and returns the case
    /// taken plus the new TTR.
    ///
    /// `now` must not precede the previous poll; out-of-order feeding is a
    /// programming error.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous poll time.
    pub fn on_poll(&mut self, now: Timestamp, result: &PollResult) -> LimdDecision {
        self.observe(now, result.as_view())
    }

    /// Allocation-free equivalent of [`Limd::on_poll`], consuming a
    /// borrowed [`PollView`] (typically straight off the origin's trace).
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous poll time.
    pub fn observe(&mut self, now: Timestamp, view: PollView<'_>) -> LimdDecision {
        if let Some(prev) = self.last_poll {
            assert!(now >= prev, "polls must be fed in order: {now} < {prev}");
        }
        let decision = match view {
            PollView::NotModified => self.case_unchanged(),
            PollView::Modified {
                last_modified,
                history,
            } => self.case_modified(now, last_modified, history),
        };
        self.ttr = decision.ttr;
        self.last_poll = Some(now);
        if let PollView::Modified { last_modified, .. } = view {
            let newest = self
                .last_known_modification
                .map_or(last_modified, |m| m.max(last_modified));
            self.last_known_modification = Some(newest);
        }
        decision
    }

    fn clamp(&self, ttr: Duration) -> Duration {
        ttr.clamp(self.config.ttr_min, self.config.ttr_max)
    }

    fn case_unchanged(&self) -> LimdDecision {
        LimdDecision {
            case: LimdCase::Unchanged,
            ttr: self.clamp(self.ttr.mul_f64(1.0 + self.config.linear_increase)),
            overshoot: Duration::ZERO,
        }
    }

    fn case_modified(
        &self,
        now: Timestamp,
        last_modified: Timestamp,
        history: Option<&[Timestamp]>,
    ) -> LimdDecision {
        // Case 4 takes precedence: an update after a long quiet spell.
        if let Some(previous_mod) = self.last_known_modification {
            if last_modified.checked_since(previous_mod).unwrap_or(Duration::ZERO)
                > self.config.idle_threshold
            {
                return LimdDecision {
                    case: LimdCase::IdleReset,
                    ttr: self.config.ttr_min,
                    overshoot: Duration::ZERO,
                };
            }
        }

        // The guarantee is judged against the FIRST update since the last
        // poll (Figure 1(b)). With the §5.1 history extension we know it
        // exactly; with plain HTTP we only see the most recent update.
        let first_update = self.first_update_since_last_poll(last_modified, history);
        let staleness = now.checked_since(first_update).unwrap_or(Duration::ZERO);
        if staleness > self.config.delta {
            let overshoot = staleness - self.config.delta;
            let m = match self.config.decrease {
                DecreaseFactor::Fixed(m) => m,
                DecreaseFactor::DeltaOverOutSync { floor, ceiling } => {
                    let ratio =
                        self.config.delta.as_millis() as f64 / staleness.as_millis() as f64;
                    ratio.clamp(floor, ceiling)
                }
            };
            LimdDecision {
                case: LimdCase::Violation,
                ttr: self.clamp(self.ttr.mul_f64(m)),
                overshoot,
            }
        } else {
            LimdDecision {
                case: LimdCase::InSync,
                ttr: self.clamp(self.ttr.mul_f64(1.0 + self.config.epsilon)),
                overshoot: Duration::ZERO,
            }
        }
    }

    fn first_update_since_last_poll(
        &self,
        last_modified: Timestamp,
        history: Option<&[Timestamp]>,
    ) -> Timestamp {
        let Some(history) = history else {
            return last_modified;
        };
        let cutoff = self.last_poll.unwrap_or(Timestamp::ZERO);
        history
            .iter()
            .copied()
            .filter(|&t| t > cutoff)
            .min()
            .unwrap_or(last_modified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LimdConfig {
        LimdConfig::builder(Duration::from_mins(10))
            .linear_increase(0.2)
            .decrease(DecreaseFactor::Fixed(0.5))
            .epsilon(0.02)
            .ttr_max(Duration::from_mins(60))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_applies_paper_defaults() {
        let c = LimdConfig::builder(Duration::from_mins(5)).build().unwrap();
        assert_eq!(c.delta(), Duration::from_mins(5));
        assert_eq!(c.ttr_min(), Duration::from_mins(5));
        assert_eq!(c.ttr_max(), Duration::from_mins(60));
        assert_eq!(c.idle_threshold(), Duration::from_mins(60));
        assert_eq!(c.linear_increase(), 0.2);
        assert_eq!(c.epsilon(), 0.02);
        assert_eq!(c.decrease(), DecreaseFactor::PAPER);
    }

    #[test]
    fn builder_validates() {
        let d = Duration::from_mins(10);
        assert!(matches!(
            LimdConfig::builder(Duration::ZERO).build(),
            Err(ConfigError::ZeroTolerance { .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d).linear_increase(1.5).build(),
            Err(ConfigError::ParameterOutOfRange { name: "l", .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d).decrease(DecreaseFactor::Fixed(1.0)).build(),
            Err(ConfigError::ParameterOutOfRange { name: "m", .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d)
                .decrease(DecreaseFactor::DeltaOverOutSync { floor: 0.0, ceiling: 0.9 })
                .build(),
            Err(ConfigError::ParameterOutOfRange { name: "m.floor", .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d)
                .decrease(DecreaseFactor::DeltaOverOutSync { floor: 0.5, ceiling: 0.2 })
                .build(),
            Err(ConfigError::ParameterOutOfRange { name: "m.ceiling", .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d).epsilon(-0.1).build(),
            Err(ConfigError::ParameterOutOfRange { name: "epsilon", .. })
        ));
        assert!(matches!(
            LimdConfig::builder(d).ttr_min(Duration::from_mins(90)).build(),
            Err(ConfigError::InvalidTtrBounds { .. })
        ));
    }

    #[test]
    fn case1_linear_growth_caps_at_max() {
        let mut limd = Limd::new(config());
        let mut now = Timestamp::ZERO;
        let mut prev = limd.current_ttr();
        for _ in 0..20 {
            now += limd.current_ttr();
            let d = limd.on_poll(now, &PollResult::NotModified);
            assert_eq!(d.case, LimdCase::Unchanged);
            assert!(d.ttr >= prev);
            assert!(d.ttr <= Duration::from_mins(60));
            prev = d.ttr;
        }
        assert_eq!(limd.current_ttr(), Duration::from_mins(60));
    }

    #[test]
    fn case2_fixed_multiplicative_decrease() {
        let mut limd = Limd::new(config());
        // Grow a little first.
        let t1 = Timestamp::from_mins(10);
        limd.on_poll(t1, &PollResult::NotModified); // ttr = 12min
        let t2 = t1 + limd.current_ttr();
        // Update happened 15 minutes before this poll → staleness > Δ.
        let lm = t2 - Duration::from_mins(15);
        let d = limd.on_poll(t2, &PollResult::modified(lm));
        assert_eq!(d.case, LimdCase::Violation);
        assert_eq!(d.overshoot, Duration::from_mins(5));
        // 12min * 0.5 = 6min, clamped up to ttr_min = 10min.
        assert_eq!(d.ttr, Duration::from_mins(10));
    }

    #[test]
    fn case2_successive_violations_floor_at_ttr_min() {
        let cfg = LimdConfig::builder(Duration::from_mins(10))
            .decrease(DecreaseFactor::Fixed(0.5))
            .ttr_min(Duration::from_mins(2))
            .ttr_max(Duration::from_mins(60))
            .build()
            .unwrap();
        let mut limd = Limd::new(cfg);
        // Climb to a high TTR.
        let mut now = Timestamp::ZERO;
        for _ in 0..30 {
            now += limd.current_ttr();
            limd.on_poll(now, &PollResult::NotModified);
        }
        assert_eq!(limd.current_ttr(), Duration::from_mins(60));
        // Hammer with violations; TTR must fall to ttr_min and stay there.
        // Keep modification gaps below the idle threshold so the idle
        // reset (Case 4) does not fire instead.
        for _ in 0..12 {
            now += limd.current_ttr();
            let lm = now - Duration::from_mins(30);
            let d = limd.on_poll(now, &PollResult::modified(lm));
            assert_eq!(d.case, LimdCase::Violation);
        }
        assert_eq!(limd.current_ttr(), Duration::from_mins(2));
    }

    #[test]
    fn case2_adaptive_m_scales_with_overshoot() {
        let cfg = LimdConfig::builder(Duration::from_mins(10))
            .decrease(DecreaseFactor::PAPER)
            .ttr_min(Duration::from_mins(1))
            .ttr_max(Duration::from_mins(60))
            .build()
            .unwrap();
        let mut limd = Limd::new(cfg);
        let mut now = Timestamp::ZERO;
        for _ in 0..30 {
            now += limd.current_ttr();
            limd.on_poll(now, &PollResult::NotModified);
        }
        let high = limd.current_ttr();

        // Mild violation: staleness 12min ⇒ m ≈ 10/12.
        let mut mild = limd.clone();
        now += mild.current_ttr();
        let d_mild = mild.on_poll(now, &PollResult::modified(now - Duration::from_mins(12)));
        // Severe violation: staleness 50min ⇒ m ≈ 0.2.
        let mut severe = limd.clone();
        let d_sev = severe.on_poll(now, &PollResult::modified(now - Duration::from_mins(50)));

        assert_eq!(d_mild.case, LimdCase::Violation);
        assert_eq!(d_sev.case, LimdCase::Violation);
        assert!(d_sev.ttr < d_mild.ttr);
        assert!(d_mild.ttr < high);
    }

    #[test]
    fn case3_fine_tunes_on_in_sync_update() {
        let mut limd = Limd::new(config());
        let t1 = Timestamp::from_mins(10);
        // Update 5 minutes ago: within Δ = 10min.
        let d = limd.on_poll(t1, &PollResult::modified(t1 - Duration::from_mins(5)));
        assert_eq!(d.case, LimdCase::InSync);
        assert_eq!(d.overshoot, Duration::ZERO);
        // 10min * 1.02 = 10.2min = 612_000 ms.
        assert_eq!(d.ttr, Duration::from_millis(612_000));
    }

    #[test]
    fn epsilon_zero_keeps_ttr_unchanged() {
        let cfg = LimdConfig::builder(Duration::from_mins(10))
            .epsilon(0.0)
            .build()
            .unwrap();
        let mut limd = Limd::new(cfg);
        let t = Timestamp::from_mins(10);
        let d = limd.on_poll(t, &PollResult::modified(t - Duration::from_mins(1)));
        assert_eq!(d.case, LimdCase::InSync);
        assert_eq!(d.ttr, Duration::from_mins(10));
    }

    #[test]
    fn case4_idle_reset_fires_after_quiet_spell() {
        let cfg = LimdConfig::builder(Duration::from_mins(10))
            .idle_threshold(Duration::from_mins(60))
            .build()
            .unwrap();
        let mut limd = Limd::new(cfg);
        // Learn of a modification at t = 5min.
        let t1 = Timestamp::from_mins(10);
        limd.on_poll(t1, &PollResult::modified(Timestamp::from_mins(5)));
        // Grow during a long quiet stretch.
        let mut now = t1;
        for _ in 0..10 {
            now += limd.current_ttr();
            limd.on_poll(now, &PollResult::NotModified);
        }
        let grown = limd.current_ttr();
        assert!(grown > Duration::from_mins(10));
        // New modification 2 hours after the previous one → idle reset,
        // even though the update itself would also count as a violation.
        let lm = Timestamp::from_mins(5) + Duration::from_hours(2);
        let poll = lm + Duration::from_mins(1);
        let d = limd.on_poll(poll.max(now + limd.current_ttr()), &PollResult::modified(lm));
        assert_eq!(d.case, LimdCase::IdleReset);
        assert_eq!(d.ttr, Duration::from_mins(10));
    }

    #[test]
    fn history_detects_figure_1b_violation() {
        // Last-modified alone looks fine (recent update within Δ), but the
        // history shows the FIRST update since the previous poll breached Δ.
        let mut limd = Limd::new(config());
        let t1 = Timestamp::from_mins(10);
        limd.on_poll(t1, &PollResult::NotModified);
        let t2 = t1 + limd.current_ttr();

        let early_update = t1 + Duration::from_mins(1); // > Δ before t2
        let late_update = t2 - Duration::from_mins(2); // within Δ of t2

        let mut with_history = limd.clone();
        let d = with_history.on_poll(
            t2,
            &PollResult::modified_with_history(late_update, [early_update, late_update]),
        );
        assert_eq!(d.case, LimdCase::Violation);

        let mut without = limd;
        let d = without.on_poll(t2, &PollResult::modified(late_update));
        assert_eq!(d.case, LimdCase::InSync);
    }

    #[test]
    fn history_entries_before_last_poll_are_ignored() {
        let mut limd = Limd::new(config());
        let t1 = Timestamp::from_mins(10);
        limd.on_poll(t1, &PollResult::NotModified);
        let t2 = t1 + limd.current_ttr();
        // History contains a stale entry from before t1; only the recent
        // one counts, and it is within Δ.
        let recent = t2 - Duration::from_mins(3);
        let d = limd.on_poll(
            t2,
            &PollResult::modified_with_history(recent, [Timestamp::from_mins(2), recent]),
        );
        assert_eq!(d.case, LimdCase::InSync);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut limd = Limd::new(config());
        let t = Timestamp::from_mins(10);
        limd.on_poll(t, &PollResult::NotModified);
        assert!(limd.current_ttr() > Duration::from_mins(10));
        limd.reset();
        assert_eq!(limd.current_ttr(), Duration::from_mins(10));
        assert_eq!(limd.last_poll(), None);
        assert_eq!(limd.last_known_modification(), None);
    }

    #[test]
    #[should_panic(expected = "polls must be fed in order")]
    fn out_of_order_polls_panic() {
        let mut limd = Limd::new(config());
        limd.on_poll(Timestamp::from_mins(10), &PollResult::NotModified);
        limd.on_poll(Timestamp::from_mins(5), &PollResult::NotModified);
    }

    #[test]
    fn tracks_last_known_modification() {
        let mut limd = Limd::new(config());
        let t1 = Timestamp::from_mins(10);
        limd.on_poll(t1, &PollResult::modified(Timestamp::from_mins(7)));
        assert_eq!(limd.last_known_modification(), Some(Timestamp::from_mins(7)));
        let t2 = t1 + limd.current_ttr();
        limd.on_poll(t2, &PollResult::NotModified);
        assert_eq!(limd.last_known_modification(), Some(Timestamp::from_mins(7)));
    }

    #[test]
    fn spec_round_trips_every_field() {
        let configs = [
            LimdConfig::builder(Duration::from_mins(10)).build().unwrap(),
            LimdConfig::builder(Duration::from_millis(50))
                .linear_increase(0.35)
                .decrease(DecreaseFactor::Fixed(0.5))
                .epsilon(0.0)
                .ttr_min(Duration::from_millis(25))
                .ttr_max(Duration::from_millis(3_200))
                .idle_threshold(Duration::from_secs(9))
                .build()
                .unwrap(),
        ];
        for config in configs {
            let spec = config.to_spec();
            let back = LimdConfig::from_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(back, config, "{spec}");
        }
    }

    #[test]
    fn spec_defaults_match_builder_defaults() {
        let parsed = LimdConfig::from_spec("delta_ms=600000").unwrap();
        assert_eq!(parsed, LimdConfig::builder(Duration::from_mins(10)).build().unwrap());
        // Order and whitespace are immaterial; delta_ms may come last.
        let parsed = LimdConfig::from_spec(" ttr_max_ms=1200000 , delta_ms=600000 ").unwrap();
        assert_eq!(parsed.ttr_max(), Duration::from_mins(20));
    }

    #[test]
    fn spec_rejects_malformed_text_and_bad_values() {
        for bad in [
            "",                       // no delta
            "l=0.2",                  // no delta
            "delta_ms=abc",           // not a number
            "delta_ms",               // not key=value
            "delta_ms=1000,m=weird:1",// unknown decrease rule
            "delta_ms=1000,m=adaptive:0.1", // missing ceiling
            "delta_ms=1000,nope=1",   // unknown key
            "delta_ms=1000,eps=0.02,eps=0.2", // duplicate key
            "delta_ms=1000,delta_ms=2000",    // duplicate delta
        ] {
            assert!(
                matches!(LimdConfig::from_spec(bad), Err(ConfigError::InvalidSpec { .. })),
                "accepted {bad:?}"
            );
        }
        // Well-formed spec, out-of-range value → the builder's own error.
        assert!(matches!(
            LimdConfig::from_spec("delta_ms=0"),
            Err(ConfigError::ZeroTolerance { .. })
        ));
        assert!(matches!(
            LimdConfig::from_spec("delta_ms=1000,l=1.5"),
            Err(ConfigError::ParameterOutOfRange { name: "l", .. })
        ));
    }

    #[test]
    fn case_display() {
        assert_eq!(LimdCase::Unchanged.to_string(), "unchanged");
        assert_eq!(LimdCase::Violation.to_string(), "violation");
        assert_eq!(LimdCase::InSync.to_string(), "in-sync");
        assert_eq!(LimdCase::IdleReset.to_string(), "idle-reset");
    }
}
