//! Fidelity metrics (§6.1.3).
//!
//! Fidelity measures how well a consistency mechanism delivered its
//! promised guarantee. The paper uses two flavours:
//!
//! * **By violations** (Equation 13): `f = 1 − violations / polls`.
//! * **By time** (Equation 14): `f = 1 − out-of-sync time / trace
//!   duration`.
//!
//! [`FidelityStats`] accumulates the raw counters; the experiment harness
//! fills them from ground truth (the full server update history, which the
//! simulator — unlike a real proxy — can see).
//!
//! ```
//! use mutcon_core::fidelity::FidelityStats;
//! use mutcon_core::time::Duration;
//!
//! let mut stats = FidelityStats::new(Duration::from_hours(48));
//! for _ in 0..100 {
//!     stats.record_poll();
//! }
//! stats.record_violation(Duration::from_mins(30));
//! assert_eq!(stats.fidelity_by_violations(), 0.99);
//! assert!(stats.fidelity_by_time() > 0.98);
//! ```

use std::iter::Sum;


use crate::time::Duration;

/// Raw counters behind both fidelity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FidelityStats {
    polls: u64,
    violations: u64,
    out_of_sync: Duration,
    observed: Duration,
}

impl FidelityStats {
    /// Creates empty statistics covering an observation window of
    /// `observed` (the trace duration in Equation 14).
    pub fn new(observed: Duration) -> Self {
        FidelityStats {
            observed,
            ..Default::default()
        }
    }

    /// Records one poll (one `If-Modified-Since` request).
    pub fn record_poll(&mut self) {
        self.polls += 1;
    }

    /// Records `n` polls at once.
    pub fn record_polls(&mut self, n: u64) {
        self.polls += n;
    }

    /// Records a detected violation together with the span for which the
    /// guarantee was broken (pass [`Duration::ZERO`] when only counting).
    pub fn record_violation(&mut self, out_of_sync: Duration) {
        self.violations += 1;
        self.out_of_sync = self.out_of_sync.saturating_add(out_of_sync);
    }

    /// Adds out-of-sync time without counting a discrete violation (used
    /// when violations and out-of-sync spans are accounted separately).
    pub fn add_out_of_sync(&mut self, d: Duration) {
        self.out_of_sync = self.out_of_sync.saturating_add(d);
    }

    /// Extends the observation window (when runs are concatenated).
    pub fn extend_observed(&mut self, d: Duration) {
        self.observed = self.observed.saturating_add(d);
    }

    /// Total polls.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Total violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total time the guarantee was broken.
    pub fn out_of_sync(&self) -> Duration {
        self.out_of_sync
    }

    /// The observation window.
    pub fn observed(&self) -> Duration {
        self.observed
    }

    /// Equation 13: `1 − violations / polls`, clamped into `[0, 1]`.
    ///
    /// With zero polls there is nothing to judge; the metric reports 1.
    pub fn fidelity_by_violations(&self) -> f64 {
        if self.polls == 0 {
            return 1.0;
        }
        (1.0 - self.violations as f64 / self.polls as f64).clamp(0.0, 1.0)
    }

    /// Equation 14: `1 − out-of-sync time / observed window`, clamped into
    /// `[0, 1]`. With an empty window the metric reports 1.
    pub fn fidelity_by_time(&self) -> f64 {
        if self.observed.is_zero() {
            return 1.0;
        }
        (1.0 - self.out_of_sync.as_millis() as f64 / self.observed.as_millis() as f64)
            .clamp(0.0, 1.0)
    }

    /// Merges another set of counters into this one (summing windows).
    pub fn merge(&mut self, other: &FidelityStats) {
        self.polls += other.polls;
        self.violations += other.violations;
        self.out_of_sync = self.out_of_sync.saturating_add(other.out_of_sync);
        self.observed = self.observed.saturating_add(other.observed);
    }
}

impl Sum for FidelityStats {
    fn sum<I: Iterator<Item = FidelityStats>>(iter: I) -> FidelityStats {
        let mut total = FidelityStats::default();
        for s in iter {
            total.merge(&s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_perfect_fidelity() {
        let s = FidelityStats::default();
        assert_eq!(s.fidelity_by_violations(), 1.0);
        assert_eq!(s.fidelity_by_time(), 1.0);
        assert_eq!(s.polls(), 0);
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn violation_fidelity_matches_equation_13() {
        let mut s = FidelityStats::new(Duration::from_hours(1));
        s.record_polls(10);
        s.record_violation(Duration::ZERO);
        s.record_violation(Duration::ZERO);
        assert_eq!(s.polls(), 10);
        assert_eq!(s.violations(), 2);
        assert!((s.fidelity_by_violations() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn time_fidelity_matches_equation_14() {
        let mut s = FidelityStats::new(Duration::from_mins(100));
        s.add_out_of_sync(Duration::from_mins(25));
        assert!((s.fidelity_by_time() - 0.75).abs() < 1e-12);
        assert_eq!(s.out_of_sync(), Duration::from_mins(25));
        assert_eq!(s.observed(), Duration::from_mins(100));
    }

    #[test]
    fn fidelity_clamps_at_zero() {
        let mut s = FidelityStats::new(Duration::from_mins(1));
        s.record_poll();
        s.record_violation(Duration::from_mins(10)); // more than the window
        s.record_violation(Duration::ZERO); // violations > polls
        assert_eq!(s.fidelity_by_violations(), 0.0);
        assert_eq!(s.fidelity_by_time(), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let mut a = FidelityStats::new(Duration::from_mins(10));
        a.record_polls(5);
        a.record_violation(Duration::from_mins(1));
        let mut b = FidelityStats::new(Duration::from_mins(20));
        b.record_polls(15);

        let total: FidelityStats = [a, b].into_iter().sum();
        assert_eq!(total.polls(), 20);
        assert_eq!(total.violations(), 1);
        assert_eq!(total.observed(), Duration::from_mins(30));
        assert_eq!(total.out_of_sync(), Duration::from_mins(1));
        assert!((total.fidelity_by_violations() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn extend_observed_grows_window() {
        let mut s = FidelityStats::new(Duration::from_mins(10));
        s.extend_observed(Duration::from_mins(10));
        assert_eq!(s.observed(), Duration::from_mins(20));
    }
}
