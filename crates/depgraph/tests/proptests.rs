// Property tests require the external `proptest` crate, which is not
// vendored in this offline workspace; enable with `--features proptests`
// in an environment that can reach a cargo registry.
#![cfg(feature = "proptests")]
//! Property-based tests: the HTML extractor never panics, reference
//! resolution is idempotent, and graph groupings are structurally sound.

use proptest::prelude::*;

use mutcon_core::object::ObjectId;
use mutcon_depgraph::deduce::{resolve_reference, GroupDeducer};
use mutcon_depgraph::graph::DependencyGraph;
use mutcon_depgraph::html::extract_links;

proptest! {
    /// The tokenizer survives arbitrary text, including pathological tag
    /// soup.
    #[test]
    fn extractor_never_panics(html in "\\PC{0,600}") {
        let _ = extract_links(&html);
    }

    /// The tokenizer survives arbitrary *tag-dense* input too.
    #[test]
    fn extractor_never_panics_on_tag_soup(
        parts in prop::collection::vec("<[a-z]{1,6}( [a-z]{1,4}=\"?[a-z./]{0,10}\"?)?>?", 0..40),
    ) {
        let html: String = parts.concat();
        let links = extract_links(&html);
        // No link may be empty: extraction trims and filters.
        for l in links {
            prop_assert!(!l.url.trim().is_empty());
        }
    }

    /// Resolution produces stable ids: resolving an already-resolved
    /// reference against the same base is a no-op.
    #[test]
    fn resolution_is_idempotent(
        base in "/[a-z]{1,8}(/[a-z]{1,8}){0,3}\\.html",
        href in "[a-z]{1,8}(/[a-z]{1,8}){0,2}\\.(png|css|js)",
    ) {
        let once = resolve_reference(&base, &href);
        // An absolute path resolves to itself from any base.
        prop_assert_eq!(resolve_reference(&base, &once), once.clone());
        prop_assert!(once.starts_with('/'));
    }

    /// Random graphs: every embedding group contains its page; component
    /// groups partition the non-isolated nodes.
    #[test]
    fn grouping_structure(edges in prop::collection::vec((0u8..20, 0u8..20), 1..60)) {
        let mut g = DependencyGraph::new();
        for (a, b) in &edges {
            g.add_dependency(ObjectId::new(format!("n{a}")), ObjectId::new(format!("n{b}")));
        }
        for group in g.embedding_groups() {
            let page = group
                .id()
                .as_str()
                .strip_prefix("embed:")
                .expect("embedding group ids are prefixed");
            prop_assert!(group.contains(&ObjectId::new(page)));
            prop_assert!(group.len() >= 2);
        }
        // Component groups are disjoint.
        let components = g.component_groups();
        let mut seen = std::collections::BTreeSet::new();
        for group in &components {
            for m in group.members() {
                prop_assert!(seen.insert(m.clone()), "object {m} in two components");
            }
        }
    }

    /// Deduced registries relate a page to exactly its embedded objects.
    #[test]
    fn deduction_matches_extraction(
        images in prop::collection::btree_set("[a-z]{1,8}\\.png", 1..8),
    ) {
        let html: String = images
            .iter()
            .map(|i| format!("<img src=\"{i}\">"))
            .collect();
        let page = ObjectId::new("/dir/page.html");
        let mut d = GroupDeducer::new();
        let n = d.add_document(page.clone(), &html);
        prop_assert_eq!(n, images.len());
        let registry = d.into_registry();
        let related: Vec<_> = registry.related(&page).cloned().collect();
        prop_assert_eq!(related.len(), images.len());
        for img in &images {
            let expected = ObjectId::new(format!("/dir/{img}"));
            prop_assert!(related.contains(&expected));
        }
    }
}
