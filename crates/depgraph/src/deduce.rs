//! Deduction of related-object groups from document content (§5.2).
//!
//! [`GroupDeducer`] consumes `(object id, HTML)` pairs, extracts each
//! document's *embedded* references with [`crate::html`], resolves them
//! against the document's path, and accumulates a
//! [`DependencyGraph`] — from which it derives the [`GroupRegistry`] the
//! mutual-consistency coordinators need. Semantic relationships
//! (domain-specific, e.g. "these two tickers are compared") are added
//! explicitly with [`GroupDeducer::relate`].

use mutcon_core::group::GroupRegistry;
use mutcon_core::object::ObjectId;

use crate::graph::{DependencyGraph, Grouping};
use crate::html::{extract_links, LinkKind};

/// Resolves an href found in `base` to an absolute-ish object id.
///
/// Object ids in this workspace are URL *paths* (`/news/story.html`). The
/// resolver handles absolute paths, scheme-qualified URLs (kept verbatim),
/// `./`-, `../`- and bare-relative references, and strips fragments and
/// query strings (two URLs differing only in fragment are the same cached
/// object).
pub fn resolve_reference(base: &str, href: &str) -> String {
    // Strip fragment/query.
    let href = href.split(['#', '?']).next().unwrap_or("");
    if href.is_empty() {
        return strip_trailing_slash(base).to_owned();
    }
    if href.contains("://") || href.starts_with('/') {
        return href.to_owned();
    }
    // Relative: resolve against the base's directory.
    let dir_end = base.rfind('/').map_or(0, |i| i + 1);
    let mut segments: Vec<&str> = base[..dir_end].split('/').filter(|s| !s.is_empty()).collect();
    for seg in href.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segments.pop();
            }
            s => segments.push(s),
        }
    }
    let absolute_base = base.starts_with('/');
    let joined = segments.join("/");
    if absolute_base {
        format!("/{joined}")
    } else {
        joined
    }
}

fn strip_trailing_slash(s: &str) -> &str {
    s.strip_suffix('/').unwrap_or(s)
}

/// Accumulates documents and explicit relations into a dependence graph.
#[derive(Debug, Clone, Default)]
pub struct GroupDeducer {
    graph: DependencyGraph,
    include_anchors: bool,
}

impl GroupDeducer {
    /// Creates a deducer that groups documents with their *embedded*
    /// objects only (images, scripts, stylesheets, frames, media).
    pub fn new() -> Self {
        GroupDeducer::default()
    }

    /// Also treats navigation anchors (`<a href>`) as relationships.
    /// Off by default: a link to another page rarely implies the pages
    /// must be mutually consistent.
    pub fn include_anchors(mut self, yes: bool) -> Self {
        self.include_anchors = yes;
        self
    }

    /// Parses `html` as the content of object `id` and records an edge to
    /// every embedded reference. Returns how many references were added.
    pub fn add_document(&mut self, id: ObjectId, html: &str) -> usize {
        self.graph.add_node(id.clone());
        let mut added = 0;
        for link in extract_links(html) {
            if link.kind == LinkKind::Anchor && !self.include_anchors {
                continue;
            }
            let target = resolve_reference(id.as_str(), &link.url);
            if target == id.as_str() {
                continue;
            }
            self.graph.add_dependency(id.clone(), ObjectId::new(target));
            added += 1;
        }
        added
    }

    /// Records an explicit (semantic) relationship between two objects.
    pub fn relate(&mut self, a: ObjectId, b: ObjectId) {
        self.graph.add_dependency(a, b);
    }

    /// The accumulated graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// Builds the registry with per-page embedding groups (the default
    /// grouping for news-page workloads).
    pub fn into_registry(self) -> GroupRegistry {
        self.graph
            .to_registry(Grouping::Embedding)
            .expect("embedding grouping is infallible")
    }

    /// Builds the registry from weakly connected components.
    pub fn into_component_registry(self) -> GroupRegistry {
        self.graph
            .to_registry(Grouping::Component)
            .expect("component grouping is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    #[test]
    fn resolve_absolute_and_scheme() {
        assert_eq!(resolve_reference("/a/b.html", "/img/x.png"), "/img/x.png");
        assert_eq!(
            resolve_reference("/a/b.html", "http://cdn/pic.gif"),
            "http://cdn/pic.gif"
        );
    }

    #[test]
    fn resolve_relative() {
        assert_eq!(resolve_reference("/a/b.html", "x.png"), "/a/x.png");
        assert_eq!(resolve_reference("/a/b.html", "./x.png"), "/a/x.png");
        assert_eq!(resolve_reference("/a/b/c.html", "../x.png"), "/a/x.png");
        assert_eq!(resolve_reference("/a/b.html", "../../x.png"), "/x.png");
        assert_eq!(resolve_reference("top.html", "x.png"), "x.png");
        assert_eq!(resolve_reference("/a/", "x.png"), "/a/x.png");
    }

    #[test]
    fn resolve_strips_fragment_and_query() {
        assert_eq!(resolve_reference("/a/b.html", "x.png#frag"), "/a/x.png");
        assert_eq!(resolve_reference("/a/b.html", "x.png?v=2"), "/a/x.png");
        assert_eq!(resolve_reference("/a/b.html", "#top"), "/a/b.html");
    }

    #[test]
    fn deduces_embedding_group() {
        let mut d = GroupDeducer::new();
        let n = d.add_document(
            oid("/news/story.html"),
            r#"<img src="photo.jpg"><script src="/js/app.js"></script><a href="/other.html">x</a>"#,
        );
        assert_eq!(n, 2); // anchor excluded
        let g = d.graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains(&oid("/news/photo.jpg")));
        assert!(g.contains(&oid("/js/app.js")));
        assert!(!g.contains(&oid("/other.html")));

        let registry = d.into_registry();
        assert_eq!(registry.len(), 1);
        let story = oid("/news/story.html");
        assert_eq!(registry.related(&story).count(), 2);
    }

    #[test]
    fn anchors_included_on_request() {
        let mut d = GroupDeducer::new().include_anchors(true);
        d.add_document(oid("/index.html"), r#"<a href="/page.html">go</a>"#);
        assert!(d.graph().contains(&oid("/page.html")));
    }

    #[test]
    fn self_references_skipped() {
        let mut d = GroupDeducer::new();
        let n = d.add_document(oid("/a.html"), r##"<a href="#top"></a><img src="a.html">"##);
        // The fragment resolves to the page itself; img to the same path.
        assert_eq!(n, 0);
        assert_eq!(d.graph().edge_count(), 0);
    }

    #[test]
    fn semantic_relations() {
        let mut d = GroupDeducer::new();
        d.relate(oid("stock/T"), oid("stock/YHOO"));
        let registry = d.into_component_registry();
        assert_eq!(registry.len(), 1);
        let t = oid("stock/T");
        assert_eq!(
            registry.related(&t).cloned().collect::<Vec<_>>(),
            vec![oid("stock/YHOO")]
        );
    }

    #[test]
    fn multiple_documents_share_objects() {
        let mut d = GroupDeducer::new();
        d.add_document(oid("/a.html"), r#"<img src="/shared.png">"#);
        d.add_document(oid("/b.html"), r#"<img src="/shared.png">"#);
        let registry = d.into_component_registry();
        // a, b, shared form one component.
        assert_eq!(registry.len(), 1);
        let shared = oid("/shared.png");
        assert_eq!(registry.related(&shared).count(), 2);
    }
}
