//! Dependence graphs over cached objects.
//!
//! A directed edge `a → b` records that `a` *depends on* (embeds,
//! references) `b` — e.g. a story page depends on its photos. §5.2 stores
//! relationships in exactly such graphs; the mutual-consistency machinery
//! then consumes them as flat [`ObjectGroup`]s, produced here either per
//! embedding ([`DependencyGraph::embedding_groups`]: each page with its
//! direct dependencies) or per weakly connected component
//! ([`DependencyGraph::component_groups`]: everything transitively
//! related).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mutcon_core::error::ConfigError;
use mutcon_core::group::{GroupRegistry, ObjectGroup};
use mutcon_core::object::ObjectId;

/// A directed dependence graph over object identifiers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependencyGraph {
    /// node → nodes it depends on.
    out_edges: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
    /// node → nodes depending on it.
    in_edges: BTreeMap<ObjectId, BTreeSet<ObjectId>>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Ensures a node exists (isolated nodes are legal).
    pub fn add_node(&mut self, id: ObjectId) {
        self.out_edges.entry(id.clone()).or_default();
        self.in_edges.entry(id).or_default();
    }

    /// Adds the edge `from → to` ("`from` depends on `to`"), creating
    /// nodes as needed. Self-edges are ignored.
    pub fn add_dependency(&mut self, from: ObjectId, to: ObjectId) {
        self.add_node(from.clone());
        if from == to {
            return;
        }
        self.add_node(to.clone());
        self.out_edges.get_mut(&from).expect("just added").insert(to.clone());
        self.in_edges.get_mut(&to).expect("just added").insert(from);
    }

    /// Whether the node exists.
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.out_edges.contains_key(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.values().map(BTreeSet::len).sum()
    }

    /// All nodes, in sorted order.
    pub fn nodes(&self) -> impl Iterator<Item = &ObjectId> + '_ {
        self.out_edges.keys()
    }

    /// Direct dependencies of `id` (what it embeds).
    pub fn dependencies<'a>(&'a self, id: &ObjectId) -> impl Iterator<Item = &'a ObjectId> + 'a {
        self.out_edges.get(id).into_iter().flatten()
    }

    /// Direct dependents of `id` (what embeds it).
    pub fn dependents<'a>(&'a self, id: &ObjectId) -> impl Iterator<Item = &'a ObjectId> + 'a {
        self.in_edges.get(id).into_iter().flatten()
    }

    /// Everything reachable from `id` following dependency edges
    /// (excluding `id` itself), breadth-first.
    pub fn transitive_dependencies(&self, id: &ObjectId) -> Vec<ObjectId> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<&ObjectId> = self.dependencies(id).collect();
        let mut out = Vec::new();
        seen.insert(id.clone());
        while let Some(next) = queue.pop_front() {
            if seen.insert(next.clone()) {
                out.push(next.clone());
                queue.extend(self.dependencies(next));
            }
        }
        out
    }

    /// Whether the dependency relation contains a cycle.
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: a cycle exists iff topological sort is partial.
        let mut in_deg: BTreeMap<&ObjectId, usize> = self
            .in_edges
            .iter()
            .map(|(id, preds)| (id, preds.len()))
            .collect();
        let mut queue: VecDeque<&ObjectId> = in_deg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut visited = 0usize;
        while let Some(id) = queue.pop_front() {
            visited += 1;
            for dep in self.dependencies(id) {
                let d = in_deg.get_mut(dep).expect("node exists");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(dep);
                }
            }
        }
        visited != self.node_count()
    }

    /// One group per node with outgoing edges: the node plus its direct
    /// dependencies — the "story + embedded objects" grouping of §1.
    /// Group ids are `embed:<node>`.
    pub fn embedding_groups(&self) -> Vec<ObjectGroup> {
        self.out_edges
            .iter()
            .filter(|(_, deps)| !deps.is_empty())
            .map(|(id, deps)| {
                let members = std::iter::once(id.clone()).chain(deps.iter().cloned());
                ObjectGroup::new(format!("embed:{id}"), members)
                    .expect("≥2 members: node plus a non-empty dependency set")
            })
            .collect()
    }

    /// One group per weakly connected component with at least two nodes.
    /// Group ids are `component:<smallest member>`.
    pub fn component_groups(&self) -> Vec<ObjectGroup> {
        let mut seen: BTreeSet<&ObjectId> = BTreeSet::new();
        let mut groups = Vec::new();
        for start in self.out_edges.keys() {
            if seen.contains(start) {
                continue;
            }
            // BFS over the undirected view.
            let mut component = BTreeSet::new();
            let mut queue = VecDeque::from([start]);
            while let Some(id) = queue.pop_front() {
                if !component.insert(id.clone()) {
                    continue;
                }
                seen.insert(id);
                queue.extend(self.dependencies(id));
                queue.extend(self.dependents(id));
            }
            if component.len() >= 2 {
                let leader = component.iter().next().expect("non-empty").clone();
                groups.push(
                    ObjectGroup::new(format!("component:{leader}"), component)
                        .expect("component has ≥2 members"),
                );
            }
        }
        groups
    }

    /// Builds a [`GroupRegistry`] from the chosen grouping strategy.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (both strategies only emit valid
    /// groups); the `Result` is kept for future strategies that may
    /// validate user input.
    pub fn to_registry(&self, strategy: Grouping) -> Result<GroupRegistry, ConfigError> {
        let groups = match strategy {
            Grouping::Embedding => self.embedding_groups(),
            Grouping::Component => self.component_groups(),
        };
        Ok(groups.into_iter().collect())
    }
}

/// How to flatten a dependence graph into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// Each page with its direct embedded objects.
    Embedding,
    /// Each weakly connected component.
    Component,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(s: &str) -> ObjectId {
        ObjectId::new(s)
    }

    fn sample() -> DependencyGraph {
        let mut g = DependencyGraph::new();
        g.add_dependency(oid("story"), oid("img1"));
        g.add_dependency(oid("story"), oid("img2"));
        g.add_dependency(oid("index"), oid("story"));
        g.add_node(oid("isolated"));
        g
    }

    #[test]
    fn nodes_and_edges() {
        let g = sample();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert!(g.contains(&oid("img1")));
        assert!(!g.contains(&oid("nope")));
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = DependencyGraph::new();
        g.add_dependency(oid("a"), oid("a"));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = DependencyGraph::new();
        g.add_dependency(oid("a"), oid("b"));
        g.add_dependency(oid("a"), oid("b"));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn direct_relations() {
        let g = sample();
        let deps: Vec<_> = g.dependencies(&oid("story")).cloned().collect();
        assert_eq!(deps, vec![oid("img1"), oid("img2")]);
        let dependents: Vec<_> = g.dependents(&oid("story")).cloned().collect();
        assert_eq!(dependents, vec![oid("index")]);
        assert_eq!(g.dependencies(&oid("missing")).count(), 0);
    }

    #[test]
    fn transitive_dependencies_bfs() {
        let g = sample();
        let all = g.transitive_dependencies(&oid("index"));
        assert_eq!(all, vec![oid("story"), oid("img1"), oid("img2")]);
        assert!(g.transitive_dependencies(&oid("img1")).is_empty());
    }

    #[test]
    fn transitive_handles_diamonds_and_cycles() {
        let mut g = DependencyGraph::new();
        g.add_dependency(oid("a"), oid("b"));
        g.add_dependency(oid("a"), oid("c"));
        g.add_dependency(oid("b"), oid("d"));
        g.add_dependency(oid("c"), oid("d"));
        g.add_dependency(oid("d"), oid("a")); // cycle back
        let deps = g.transitive_dependencies(&oid("a"));
        assert_eq!(deps.len(), 3); // b, c, d — not a itself
        assert!(!deps.contains(&oid("a")));
    }

    #[test]
    fn cycle_detection() {
        let mut g = sample();
        assert!(!g.has_cycle());
        g.add_dependency(oid("img1"), oid("index"));
        assert!(g.has_cycle());
        assert!(!DependencyGraph::new().has_cycle());
    }

    #[test]
    fn embedding_groups_cover_pages() {
        let g = sample();
        let groups = g.embedding_groups();
        assert_eq!(groups.len(), 2); // story and index have outgoing edges
        let story_group = groups
            .iter()
            .find(|g| g.id().as_str() == "embed:story")
            .unwrap();
        assert_eq!(story_group.len(), 3);
        assert!(story_group.contains(&oid("img1")));
        assert!(story_group.contains(&oid("story")));
    }

    #[test]
    fn component_groups_merge_transitively() {
        let g = sample();
        let groups = g.component_groups();
        // One component of 4 (index, story, img1, img2); `isolated` is
        // alone and therefore dropped.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
        assert!(!groups[0].contains(&oid("isolated")));
    }

    #[test]
    fn registry_from_graph() {
        let g = sample();
        let reg = g.to_registry(Grouping::Embedding).unwrap();
        assert_eq!(reg.len(), 2);
        let story = oid("story");
        // story belongs to both its own embed group and index's.
        assert_eq!(reg.groups_of(&story).count(), 2);
        let reg = g.to_registry(Grouping::Component).unwrap();
        assert_eq!(reg.len(), 1);
    }
}
