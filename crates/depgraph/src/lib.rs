//! # mutcon-depgraph — determining groups of related objects
//!
//! Mutual consistency presumes the proxy *knows* which objects are related
//! (§5.2). Relationships come from two sources:
//!
//! * **Syntactic** — an HTML page embeds images, stylesheets and scripts;
//!   the page and its embedded objects form a natural group (the
//!   breaking-news-story example of §1). [`html`] implements a small
//!   HTML tokenizer that extracts those references and [`deduce`] resolves
//!   them into graph edges.
//! * **Semantic** — domain knowledge ("these two stock quotes are being
//!   compared") supplied explicitly by users; callers add those edges to
//!   the [`graph::DependencyGraph`] directly.
//!
//! Either way the result is a dependence graph in the style of Iyengar &
//! Challenger's Data Update Propagation (the paper's reference \[12\]),
//! from which [`graph::DependencyGraph::embedding_groups`] and
//! [`graph::DependencyGraph::component_groups`] derive the
//! [`ObjectGroup`]s that the mutual-consistency coordinators consume. The
//! graph alone maintains nothing — as §5.2 notes, it must be *combined*
//! with the mutual-consistency algorithms of `mutcon-core`.
//!
//! ```
//! use mutcon_depgraph::deduce::GroupDeducer;
//! use mutcon_core::object::ObjectId;
//!
//! let mut deducer = GroupDeducer::new();
//! deducer.add_document(
//!     ObjectId::new("/news/story.html"),
//!     r#"<html><body><img src="photo.jpg"><script src="/js/app.js"></script></body></html>"#,
//! );
//! let registry = deducer.into_registry();
//! let story = ObjectId::new("/news/story.html");
//! let related: Vec<_> = registry.related(&story).collect();
//! assert_eq!(related.len(), 2); // photo.jpg and app.js
//! ```
//!
//! [`ObjectGroup`]: mutcon_core::group::ObjectGroup

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod deduce;
pub mod graph;
pub mod html;

pub use deduce::GroupDeducer;
pub use graph::DependencyGraph;
pub use html::{extract_links, ExtractedLink, LinkKind};
