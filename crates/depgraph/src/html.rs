//! A small, dependency-free HTML link extractor.
//!
//! This is not a general HTML parser — it is the subset a proxy needs to
//! deduce syntactic relationships (§5.2): scan a document for tags that
//! reference other web objects and classify each reference as *embedded*
//! (fetched automatically as part of rendering: images, scripts,
//! stylesheets, frames, media) or a plain *anchor* (navigation link).
//! Embedded references are what make a page and its sub-objects a
//! mutual-consistency group.
//!
//! The tokenizer handles attribute quoting styles (double, single,
//! unquoted), is case-insensitive in tag/attribute names, and skips
//! comments and CDATA-free script bodies well enough for real-world news
//! pages of the paper's era.

use std::fmt;

/// How a link participates in the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Fetched automatically when rendering the page (`img`, `script`,
    /// `link rel=stylesheet`, `iframe`, `frame`, `embed`, `source`,
    /// `audio`, `video`, `object data=`).
    Embedded,
    /// A navigation link (`a href`, `area href`).
    Anchor,
}

/// One reference extracted from a document.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExtractedLink {
    /// The raw attribute value (un-resolved URL).
    pub url: String,
    /// Embedded object or navigation anchor.
    pub kind: LinkKind,
    /// The tag it came from, lowercased (`"img"`, `"a"`, …).
    pub tag: String,
}

/// Extracts all object references from an HTML document, in document
/// order. Duplicate URLs are preserved (callers dedup as needed).
pub fn extract_links(html: &str) -> Vec<ExtractedLink> {
    Scanner::new(html).run()
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    out: Vec<ExtractedLink>,
}

impl<'a> Scanner<'a> {
    fn new(html: &'a str) -> Self {
        Scanner {
            bytes: html.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<ExtractedLink> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] != b'<' {
                self.pos += 1;
                continue;
            }
            if self.starts_with("<!--") {
                self.skip_comment();
                continue;
            }
            self.scan_tag();
        }
        self.out
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_comment(&mut self) {
        // Skip past "-->"; unterminated comments swallow the rest.
        match find_sub(&self.bytes[self.pos + 4..], b"-->") {
            Some(rel) => self.pos += 4 + rel + 3,
            None => self.pos = self.bytes.len(),
        }
    }

    fn scan_tag(&mut self) {
        let start = self.pos + 1;
        let Some(rel_end) = self.bytes[start..].iter().position(|&b| b == b'>') else {
            self.pos = self.bytes.len();
            return;
        };
        let inner = &self.bytes[start..start + rel_end];
        self.pos = start + rel_end + 1;

        // Closing tags, doctype and processing instructions carry no links.
        if inner.first().is_some_and(|&b| b == b'/' || b == b'!' || b == b'?') {
            return;
        }
        let Ok(inner) = std::str::from_utf8(inner) else {
            return;
        };
        let mut parts = TagParts::parse(inner);
        let tag = parts.name.to_ascii_lowercase();

        let (attr, kind): (&str, LinkKind) = match tag.as_str() {
            "img" | "script" | "iframe" | "frame" | "embed" | "source" | "audio" | "video"
            | "input" => ("src", LinkKind::Embedded),
            "link" => {
                // Only resource-ish rels count as embedded.
                let rel = parts.attr("rel").unwrap_or_default().to_ascii_lowercase();
                if rel.is_empty()
                    || rel.contains("stylesheet")
                    || rel.contains("icon")
                    || rel.contains("preload")
                {
                    ("href", LinkKind::Embedded)
                } else {
                    return;
                }
            }
            "object" => ("data", LinkKind::Embedded),
            "a" | "area" => ("href", LinkKind::Anchor),
            _ => return,
        };

        if let Some(url) = parts.attr(attr) {
            let url = url.trim();
            if !url.is_empty() {
                self.out.push(ExtractedLink {
                    url: url.to_owned(),
                    kind,
                    tag,
                });
            }
        }
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The name and attributes of one tag's interior text.
struct TagParts<'a> {
    name: &'a str,
    rest: &'a str,
}

impl<'a> TagParts<'a> {
    fn parse(inner: &'a str) -> Self {
        let inner = inner.trim_end_matches('/');
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        TagParts {
            name: &inner[..name_end],
            rest: &inner[name_end..],
        }
    }

    /// Finds an attribute value, handling `key="v"`, `key='v'`, `key=v`
    /// and valueless attributes. Attribute names are case-insensitive.
    fn attr(&mut self, want: &str) -> Option<&'a str> {
        let mut rest = self.rest;
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                return None;
            }
            // Attribute name.
            let name_end = rest
                .find(|c: char| c.is_ascii_whitespace() || c == '=')
                .unwrap_or(rest.len());
            let (name, after) = rest.split_at(name_end);
            let after = after.trim_start();
            let Some(after_eq) = after.strip_prefix('=') else {
                // Valueless attribute; move on.
                rest = after;
                continue;
            };
            let after_eq = after_eq.trim_start();
            let (value, remaining) = if let Some(q) = after_eq.strip_prefix('"') {
                match q.find('"') {
                    Some(end) => (&q[..end], &q[end + 1..]),
                    None => (q, ""),
                }
            } else if let Some(q) = after_eq.strip_prefix('\'') {
                match q.find('\'') {
                    Some(end) => (&q[..end], &q[end + 1..]),
                    None => (q, ""),
                }
            } else {
                let end = after_eq
                    .find(|c: char| c.is_ascii_whitespace())
                    .unwrap_or(after_eq.len());
                (&after_eq[..end], &after_eq[end..])
            };
            if name.eq_ignore_ascii_case(want) {
                return Some(value);
            }
            rest = remaining;
        }
    }
}

impl fmt::Display for ExtractedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} {:?}>", self.tag, self.url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls(html: &str, kind: LinkKind) -> Vec<String> {
        extract_links(html)
            .into_iter()
            .filter(|l| l.kind == kind)
            .map(|l| l.url)
            .collect()
    }

    #[test]
    fn extracts_images_and_scripts() {
        let html = r#"<html><body>
            <img src="photo.jpg" alt="x">
            <script src='/js/app.js'></script>
            <IMG SRC=banner.gif>
        </body></html>"#;
        assert_eq!(
            urls(html, LinkKind::Embedded),
            vec!["photo.jpg", "/js/app.js", "banner.gif"]
        );
    }

    #[test]
    fn extracts_anchors_separately() {
        let html = r#"<a href="/other.html">go</a> <area href="map.html">"#;
        assert_eq!(urls(html, LinkKind::Anchor), vec!["/other.html", "map.html"]);
        assert!(urls(html, LinkKind::Embedded).is_empty());
    }

    #[test]
    fn link_rel_filtering() {
        let html = r#"
            <link rel="stylesheet" href="style.css">
            <link rel="icon" href="fav.ico">
            <link rel="canonical" href="http://example.org/page">
            <link href="bare.css">
        "#;
        assert_eq!(
            urls(html, LinkKind::Embedded),
            vec!["style.css", "fav.ico", "bare.css"]
        );
    }

    #[test]
    fn media_and_frames() {
        let html = r#"
            <iframe src="inner.html"></iframe>
            <video src="clip.mov"></video>
            <audio src="news.au"></audio>
            <embed src="anim.swf">
            <object data="applet.class"></object>
            <source src="clip.webm">
        "#;
        assert_eq!(
            urls(html, LinkKind::Embedded),
            vec!["inner.html", "clip.mov", "news.au", "anim.swf", "applet.class", "clip.webm"]
        );
    }

    #[test]
    fn skips_comments() {
        let html = r#"<!-- <img src="ghost.png"> --><img src="real.png">"#;
        assert_eq!(urls(html, LinkKind::Embedded), vec!["real.png"]);
    }

    #[test]
    fn handles_attribute_order_and_noise() {
        let html = r#"<img width="10" data-x="src" src="pic.png" height="20">"#;
        assert_eq!(urls(html, LinkKind::Embedded), vec!["pic.png"]);
    }

    #[test]
    fn valueless_attributes_do_not_confuse() {
        let html = r#"<script async src="a.js"></script><img hidden src=b.png>"#;
        assert_eq!(urls(html, LinkKind::Embedded), vec!["a.js", "b.png"]);
    }

    #[test]
    fn self_closing_and_empty_urls() {
        let html = r#"<img src="x.png"/><img src="">  <img src="  ">"#;
        assert_eq!(urls(html, LinkKind::Embedded), vec!["x.png"]);
    }

    #[test]
    fn ignores_closing_and_doctype_tags() {
        let html = "<!DOCTYPE html><html></html><?xml version=\"1.0\"?>";
        assert!(extract_links(html).is_empty());
    }

    #[test]
    fn survives_malformed_input() {
        for html in [
            "<",
            "<img src=\"unterminated",
            "<img src='x.png'",
            "<!-- never closed",
            "<a href=>",
            "text only",
            "",
        ] {
            let _ = extract_links(html); // must not panic
        }
    }

    #[test]
    fn preserves_document_order_and_duplicates() {
        let html = r#"<img src="a.png"><img src="b.png"><img src="a.png">"#;
        assert_eq!(urls(html, LinkKind::Embedded), vec!["a.png", "b.png", "a.png"]);
    }

    #[test]
    fn display_form() {
        let l = ExtractedLink {
            url: "x.png".into(),
            kind: LinkKind::Embedded,
            tag: "img".into(),
        };
        assert_eq!(l.to_string(), "<img \"x.png\">");
    }
}
