//! # mutcon — maintaining mutual consistency for cached web objects
//!
//! A full reproduction of *"Maintaining Mutual Consistency for Cached Web
//! Objects"* (Urgaonkar, Ninan, Raunak, Shenoy, Ramamritham — ICDCS
//! 2001): the adaptive cache-consistency algorithms, the event-driven
//! proxy simulator and workloads used to evaluate them, and a live TCP
//! proxy/origin pair running the same algorithms over real HTTP.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — consistency semantics and algorithms (LIMD, adaptive
//!   TTR, Mt/Mv coordinators, fidelity metrics).
//! * [`sim`] — deterministic discrete-event simulation.
//! * [`http`] — a from-scratch HTTP/1.1 subset with the paper's §5.1
//!   extensions.
//! * [`depgraph`] — HTML link extraction and dependence graphs for
//!   deducing related-object groups.
//! * [`traces`] — the calibrated synthetic workloads of Tables 2–3.
//! * [`proxy`] — the simulated proxy cache and the experiment harness
//!   regenerating every figure.
//! * [`live`] — the real-socket origin server and caching proxy daemon.
//!
//! ## Quick start
//!
//! ```
//! use mutcon::core::limd::{Limd, LimdConfig, PollResult};
//! use mutcon::core::time::{Duration, Timestamp};
//!
//! # fn main() -> Result<(), mutcon::core::error::ConfigError> {
//! // Keep one object Δt-consistent with Δ = 10 minutes.
//! let mut limd = Limd::new(LimdConfig::builder(Duration::from_mins(10)).build()?);
//! let now = Timestamp::ZERO + limd.current_ttr();
//! let decision = limd.on_poll(now, &PollResult::NotModified);
//! assert!(decision.ttr > Duration::from_mins(10)); // backing off already
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `cargo run -p mutcon-bench --bin repro --release -- all` for the full
//! paper reproduction.

pub use mutcon_core as core;
pub use mutcon_depgraph as depgraph;
pub use mutcon_http as http;
pub use mutcon_live as live;
pub use mutcon_proxy as proxy;
pub use mutcon_sim as sim;
pub use mutcon_traces as traces;
