//! Integration tests asserting the paper's headline claims (§1, §6) on
//! the full calibrated workloads — the quantitative shapes the
//! reproduction must preserve.

use mutcon::core::time::Duration;
use mutcon::core::value::Value;
use mutcon::proxy::experiment::{
    individual_temporal_sweep, mutual_temporal_sweep, mutual_value_sweep, ttr_timeline,
    Fig3Config, Fig7Config,
};
use mutcon::traces::NamedTrace;

/// §6.2.1 / Figure 3: with Δ ≪ the update period, LIMD polls roughly at
/// the object's change rate — "a reduction by a factor of 6 in the number
/// of polls with only a 20% loss in fidelity" for CNN/FN at Δ = 1 min.
#[test]
fn limd_saves_a_large_factor_at_small_delta() {
    let trace = NamedTrace::CnnFn.generate();
    let rows = individual_temporal_sweep(
        &trace,
        &[Duration::from_mins(1)],
        &Fig3Config::default(),
    );
    let row = &rows[0];
    let factor = row.baseline_polls as f64 / row.limd_polls as f64;
    assert!(
        factor > 3.0,
        "expected a large poll reduction, got {factor:.1}x ({} vs {})",
        row.baseline_polls,
        row.limd_polls
    );
    assert!(
        row.limd_fidelity_violations > 0.75,
        "fidelity collapsed: {}",
        row.limd_fidelity_violations
    );
    assert!(row.baseline_fidelity > 0.999);
}

/// §6.2.1 / Figure 3: when Δ exceeds the update period, LIMD converges to
/// the baseline — same polls, fidelity → 1.
#[test]
fn limd_converges_to_baseline_at_large_delta() {
    let trace = NamedTrace::CnnFn.generate();
    let rows = individual_temporal_sweep(
        &trace,
        &[Duration::from_mins(60)],
        &Fig3Config::default(),
    );
    let row = &rows[0];
    let ratio = row.limd_polls as f64 / row.baseline_polls as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "LIMD should track the baseline at Δ=60min: {} vs {}",
        row.limd_polls,
        row.baseline_polls
    );
    assert!(row.limd_fidelity_violations > 0.95);
}

/// Figure 3(b)/(c): both fidelity metrics tell the same qualitative
/// story — they improve as Δ loosens.
#[test]
fn both_fidelity_metrics_improve_with_delta() {
    let trace = NamedTrace::CnnFn.generate();
    let rows = individual_temporal_sweep(
        &trace,
        &[Duration::from_mins(2), Duration::from_mins(45)],
        &Fig3Config::default(),
    );
    assert!(rows[1].limd_fidelity_violations >= rows[0].limd_fidelity_violations);
    assert!(rows[1].limd_fidelity_time >= rows[0].limd_fidelity_time);
}

/// Figure 4: LIMD's TTR climbs towards TTR_max during the nightly quiet
/// period and spends time at/near TTR_min during busy spells.
#[test]
fn limd_ttr_adapts_to_diurnal_pattern() {
    let trace = NamedTrace::CnnFn.generate();
    let out = ttr_timeline(
        &trace,
        Duration::from_mins(10),
        Duration::from_hours(2),
        &Fig3Config::default(),
    );
    let max_ttr = out.ttr.iter().map(|(_, d)| *d).max().expect("non-empty");
    let min_ttr = out.ttr.iter().map(|(_, d)| *d).min().expect("non-empty");
    assert_eq!(
        max_ttr,
        Duration::from_mins(60),
        "TTR should reach TTR_max during the night"
    );
    assert_eq!(
        min_ttr,
        Duration::from_mins(10),
        "TTR should sit at TTR_min = Δ during bursts"
    );
    // The night shows up as empty update windows.
    assert!(
        out.update_counts.iter().any(|w| w.count == 0),
        "expected quiet windows in the diurnal workload"
    );
}

/// §6.2.2 / Figure 5: triggered polls give fidelity 1; the heuristic sits
/// between baseline and triggered in both polls and fidelity; and the
/// incremental cost of mutual consistency stays modest (the paper claims
/// < 20% for the heuristic).
#[test]
fn mutual_consistency_cost_and_fidelity_ordering() {
    let a = NamedTrace::CnnFn.generate();
    let b = NamedTrace::NytAp.generate();
    let deltas = [
        Duration::from_mins(1),
        Duration::from_mins(5),
        Duration::from_mins(15),
        Duration::from_mins(30),
    ];
    let rows = mutual_temporal_sweep(
        &a,
        &b,
        Duration::from_mins(10),
        &deltas,
        &Fig3Config::default(),
    );
    for row in &rows {
        assert_eq!(
            row.triggered.fidelity, 1.0,
            "triggered polls must be perfect at δ={}",
            row.mutual_delta
        );
        // A triggered refresh of one object can itself create a brief
        // inconsistency its slow partner is not polled to repair, so the
        // heuristic may dip marginally below baseline at loose δ; the
        // paper's qualitative claim is the 0.87–1.0 band.
        assert!(row.heuristic.fidelity >= row.baseline.fidelity - 0.03);
        assert!(row.heuristic.fidelity > 0.87, "heuristic fidelity too low");
        // Triggered-poll refreshes perturb the LIMD trajectories, so the
        // poll ordering is only approximate at loose δ where few triggers
        // fire; allow a 10% + small-constant slack.
        assert!(
            row.heuristic.polls as f64 <= row.triggered.polls as f64 * 1.1 + 20.0,
            "heuristic polls {} far above triggered {} at δ={}",
            row.heuristic.polls,
            row.triggered.polls,
            row.mutual_delta
        );
    }
    // At the tightest δ the selective heuristic is strictly cheaper than
    // triggering everything.
    assert!(rows[0].heuristic.polls < rows[0].triggered.polls);
    // Where mutual support matters (tight δ), the heuristic clearly beats
    // plain LIMD.
    assert!(
        rows[0].heuristic.fidelity > rows[0].baseline.fidelity + 0.03,
        "heuristic {:.3} should beat baseline {:.3} at δ=1min",
        rows[0].heuristic.fidelity,
        rows[0].baseline.fidelity
    );
    // Incremental cost of the heuristic at the tightest δ.
    let tight = &rows[0];
    let overhead =
        tight.heuristic.polls as f64 / tight.baseline.polls as f64 - 1.0;
    assert!(
        overhead < 0.25,
        "heuristic overhead {:.0}% exceeds the paper's ~20% bound",
        overhead * 100.0
    );
    // Fidelity improves (or holds) as δ loosens.
    assert!(rows.last().unwrap().heuristic.fidelity >= rows[0].heuristic.fidelity);
}

/// §6.2.3 / Figure 7: fewer polls for looser δ; the partitioned approach
/// buys higher fidelity than the adaptive one at a higher poll cost (for
/// moderate δ, where neither approach saturates).
#[test]
fn value_domain_tradeoff() {
    let yahoo = NamedTrace::Yahoo.generate();
    let att = NamedTrace::Att.generate();
    let deltas = [Value::new(0.6), Value::new(1.0), Value::new(5.0)];
    let rows = mutual_value_sweep(&yahoo, &att, &deltas, &Fig7Config::default());

    // Poll counts decrease with δ for both approaches.
    for pair in rows.windows(2) {
        assert!(pair[1].adaptive_polls <= pair[0].adaptive_polls);
        assert!(pair[1].partitioned_polls <= pair[0].partitioned_polls);
    }
    // At the paper's δ = $0.6: partitioned = more polls, more fidelity.
    let at_06 = &rows[0];
    assert!(
        at_06.partitioned_polls > at_06.adaptive_polls,
        "partitioned {} vs adaptive {}",
        at_06.partitioned_polls,
        at_06.adaptive_polls
    );
    assert!(
        at_06.partitioned_fidelity > at_06.adaptive_fidelity,
        "partitioned {:.3} vs adaptive {:.3}",
        at_06.partitioned_fidelity,
        at_06.adaptive_fidelity
    );
    for r in &rows {
        assert!(r.adaptive_fidelity > 0.8);
        assert!(r.partitioned_fidelity > 0.9);
    }
}

/// Table 2 and 3 statistics reproduce exactly by construction.
#[test]
fn workload_tables_reproduce() {
    for nt in NamedTrace::TEMPORAL.iter().chain(&NamedTrace::VALUE) {
        let trace = nt.generate();
        assert_eq!(trace.update_count(), nt.update_count(), "{}", nt.name());
        assert_eq!(trace.duration(), nt.duration(), "{}", nt.name());
        if let Some((lo, hi)) = nt.value_band() {
            let (min_v, max_v) = trace.value_range().expect("valued trace");
            assert!(min_v >= lo && max_v <= hi, "{} out of band", nt.name());
        }
    }
}
