//! Cross-crate pipeline tests: HTML deduction feeding simulation,
//! persistence round-trips feeding identical experiments, and the HTTP
//! extension headers carrying what the algorithms need.

use mutcon::core::limd::LimdConfig;
use mutcon::core::mutual::temporal::MtPolicy;
use mutcon::core::object::ObjectId;
use mutcon::core::time::{Duration, Timestamp};
use mutcon::depgraph::GroupDeducer;
use mutcon::http::extensions::{modification_history, ConsistencyDirectives};
use mutcon::http::headers::HeaderMap;
use mutcon::proxy::drivers::{run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig};
use mutcon::proxy::metrics;
use mutcon::proxy::origin::{HistorySupport, OriginServer};
use mutcon::traces::generator::NewsTraceBuilder;
use mutcon::traces::io::{from_json, from_tsv, to_json, to_tsv};
use mutcon::traces::NamedTrace;

/// HTML → groups → mutual-consistency simulation, end to end.
#[test]
fn html_deduction_drives_mutual_consistency() {
    let page = ObjectId::new("/front.html");
    let html = r#"<html><body>
        <img src="ticker.png"><img src="headline.png">
    </body></html>"#;
    let mut deducer = GroupDeducer::new();
    assert_eq!(deducer.add_document(page.clone(), html), 2);
    let registry = deducer.into_registry();
    let members: Vec<ObjectId> = std::iter::once(page.clone())
        .chain(registry.related(&page).cloned())
        .collect();
    assert_eq!(members.len(), 3);

    let mut origin = OriginServer::new();
    for (i, m) in members.iter().enumerate() {
        let trace = NewsTraceBuilder::new(m.as_str(), Duration::from_hours(6), 40)
            .seed(900 + i as u64)
            .build()
            .unwrap();
        origin.host(m.clone(), trace);
    }
    let until = Timestamp::ZERO + Duration::from_hours(6);
    let out = run_temporal(
        &origin,
        &members,
        &TemporalSimConfig {
            policy: TemporalPolicy::Limd(
                LimdConfig::builder(Duration::from_mins(10)).build().unwrap(),
            ),
            mutual: Some(MutualSetup {
                delta: Duration::from_mins(2),
                policy: MtPolicy::TriggeredPolls,
            }),
            until,
        },
    );
    // Every pair involving the page is perfectly consistent.
    for m in &members[1..] {
        let stats = metrics::mutual_temporal(
            origin.trace(&page).unwrap(),
            &out.logs[&page],
            origin.trace(m).unwrap(),
            &out.logs[m],
            Duration::from_mins(2),
            until,
        );
        assert_eq!(stats.fidelity_by_violations(), 1.0);
    }
    assert!(out.total_triggered() > 0);
}

/// Persisted traces drive byte-identical experiments.
#[test]
fn persistence_preserves_experiment_results() {
    let trace = NamedTrace::NytReuters.generate();
    let via_tsv = from_tsv(&to_tsv(&trace)).expect("tsv round-trip");
    let via_json = from_json(&to_json(&trace).expect("encode")).expect("json round-trip");

    let run = |t: &mutcon::traces::UpdateTrace| {
        let id = ObjectId::new("x");
        let mut origin = OriginServer::new();
        origin.host(id.clone(), t.clone());
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(
                    LimdConfig::builder(Duration::from_mins(10)).build().unwrap(),
                ),
                mutual: None,
                until: t.end(),
            },
        );
        out.logs[&id].clone()
    };
    let original = run(&trace);
    assert_eq!(run(&via_tsv), original);
    assert_eq!(run(&via_json), original);
}

/// The §5.1 history extension changes what the proxy can detect: with
/// history, LIMD sees the Figure 1(b) violations and backs off harder,
/// never producing *worse* ground-truth fidelity.
#[test]
fn history_extension_improves_detection() {
    let trace = NamedTrace::Guardian.generate();
    let id = ObjectId::new("g");
    let delta = Duration::from_mins(10);
    let run = |support: HistorySupport| {
        let mut origin = OriginServer::new().with_history(support);
        origin.host(id.clone(), trace.clone());
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(LimdConfig::builder(delta).build().unwrap()),
                mutual: None,
                until: trace.end(),
            },
        );
        metrics::individual_temporal(&trace, &out.logs[&id], delta, trace.end())
    };
    let plain = run(HistorySupport::None);
    let with_history = run(HistorySupport::Full);
    assert!(
        with_history.fidelity_by_violations() >= plain.fidelity_by_violations() - 1e-9,
        "history made fidelity worse: {} vs {}",
        with_history.fidelity_by_violations(),
        plain.fidelity_by_violations()
    );
}

/// The extension headers round-trip through a real header map, so a §5.1
/// server↔proxy exchange can carry tolerances and histories.
#[test]
fn extension_headers_carry_consistency_metadata() {
    let mut headers = HeaderMap::new();
    let directives = ConsistencyDirectives {
        delta: Some(Duration::from_mins(10)),
        mutual_delta: Some(Duration::from_mins(5)),
        group: Some("front-page".to_owned()),
    };
    directives.apply(&mut headers);
    assert_eq!(ConsistencyDirectives::from_headers(&headers), directives);

    mutcon::http::extensions::set_modification_history(
        &mut headers,
        &[Timestamp::from_millis(100), Timestamp::from_millis(2_500)],
    );
    assert_eq!(
        modification_history(&headers),
        Some(vec![Timestamp::from_millis(100), Timestamp::from_millis(2_500)])
    );
}

/// Whole-pipeline determinism: the same named workload and configuration
/// produce identical poll logs and metrics across runs.
#[test]
fn experiments_are_reproducible() {
    let run = || {
        let trace = NamedTrace::CnnFn.generate();
        let id = ObjectId::new("cnn");
        let mut origin = OriginServer::new();
        origin.host(id.clone(), trace.clone());
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(
                    LimdConfig::builder(Duration::from_mins(5)).build().unwrap(),
                ),
                mutual: None,
                until: trace.end(),
            },
        );
        let stats =
            metrics::individual_temporal(&trace, &out.logs[&id], Duration::from_mins(5), trace.end());
        (out.logs[&id].clone(), stats.polls(), stats.violations())
    };
    assert_eq!(run(), run());
}
