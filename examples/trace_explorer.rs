//! Explore the calibrated workloads: regenerate Tables 2 and 3, show the
//! diurnal structure of a news trace (Figure 4(a)'s raw material), and
//! round-trip a trace through the TSV codec.
//!
//! ```sh
//! cargo run --example trace_explorer
//! ```

use mutcon::core::time::Duration;
use mutcon::traces::io::{from_tsv, to_tsv};
use mutcon::traces::stats::{summarize, updates_per_window};
use mutcon::traces::NamedTrace;

fn main() {
    println!("Table 2 workloads (temporal):");
    for nt in NamedTrace::TEMPORAL {
        let s = summarize(&nt.generate());
        println!(
            "  {:<18} {:>6.1} h {:>5} updates  mean gap {:>5.1} min",
            s.name,
            s.duration.as_secs_f64() / 3_600.0,
            s.updates,
            s.mean_update_gap.map_or(0.0, |g| g.as_mins_f64())
        );
    }

    println!("\nTable 3 workloads (value):");
    for nt in NamedTrace::VALUE {
        let s = summarize(&nt.generate());
        let (lo, hi) = s.value_range.expect("stock traces carry values");
        println!(
            "  {:<8} {:>6.1} h {:>5} ticks  ${:.2} – ${:.2}",
            s.name,
            s.duration.as_secs_f64() / 3_600.0,
            s.updates,
            lo.as_f64(),
            hi.as_f64()
        );
    }

    // The diurnal fingerprint: updates per 2-hour window of CNN/FN.
    let trace = NamedTrace::CnnFn.generate();
    println!("\n{} updates per 2-hour window (note the nightly lulls):", trace.name());
    for w in updates_per_window(&trace, Duration::from_hours(2)) {
        let hour = 13.07 + w.start.as_secs_f64() / 3_600.0; // trace starts 13:04
        println!(
            "  {:>5.1} h (≈{:02}:00 wall) {:>4} {}",
            w.start.as_secs_f64() / 3_600.0,
            (hour % 24.0) as u32,
            w.count,
            "#".repeat(w.count as usize)
        );
    }

    // Persistence round-trip.
    let tsv = to_tsv(&trace);
    let restored = from_tsv(&tsv).expect("codec round-trips");
    assert_eq!(restored.update_count(), trace.update_count());
    println!(
        "\nTSV round-trip OK: {} bytes encode {} events",
        tsv.len(),
        trace.events().len()
    );
}
