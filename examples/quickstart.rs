//! Quickstart: keep one frequently changing news page Δt-consistent with
//! the adaptive LIMD algorithm and compare against the every-Δ baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mutcon::core::object::ObjectId;
use mutcon::core::time::Duration;
use mutcon::proxy::drivers::{run_temporal, TemporalPolicy, TemporalSimConfig};
use mutcon::proxy::metrics;
use mutcon::proxy::origin::OriginServer;
use mutcon::traces::NamedTrace;
use mutcon_core::limd::LimdConfig;

fn main() {
    // The CNN Financial News workload from the paper's Table 2:
    // 113 updates over ~49.5 hours, quiet at night.
    let trace = NamedTrace::CnnFn.generate();
    println!(
        "workload: {} — {} updates over {:.1} h",
        trace.name(),
        trace.update_count(),
        trace.duration().as_secs_f64() / 3_600.0
    );

    let id = ObjectId::new(trace.name());
    let mut origin = OriginServer::new();
    origin.host(id.clone(), trace.clone());

    let delta = Duration::from_mins(10);
    println!("consistency requirement: Δt = {delta}\n");

    for (label, policy) in [
        ("baseline (poll every Δ)", TemporalPolicy::Periodic(delta)),
        (
            "LIMD (adaptive)",
            TemporalPolicy::Limd(
                LimdConfig::builder(delta)
                    .ttr_max(Duration::from_mins(60))
                    .build()
                    .expect("valid LIMD parameters"),
            ),
        ),
    ] {
        let out = run_temporal(
            &origin,
            std::slice::from_ref(&id),
            &TemporalSimConfig {
                policy,
                mutual: None,
                until: trace.end(),
            },
        );
        let stats = metrics::individual_temporal(&trace, &out.logs[&id], delta, trace.end());
        println!(
            "{label:<26} polls: {:>5}   fidelity: {:.3} (by violations), {:.3} (by time)",
            stats.polls(),
            stats.fidelity_by_violations(),
            stats.fidelity_by_time()
        );
    }

    println!(
        "\nLIMD polls at roughly the object's own update rate, trading a\n\
         little fidelity for a large reduction in network overhead (§3.1)."
    );
}
