//! The live mode: a real origin server and a real caching proxy on
//! localhost TCP, replaying the CNN/FN trace at 100 000× speed while the
//! proxy's LIMD refresher and triggered polls keep its cache consistent.
//!
//! ```sh
//! cargo run --example live_proxy
//! ```

use std::time::Duration as StdDuration;

use mutcon::core::mutual::temporal::MtPolicy;
use mutcon::core::time::Duration;
use mutcon::live::client::{last_modified_ms, HttpClient};
use mutcon::live::origin::LiveOrigin;
use mutcon::live::proxy::{GroupRule, LiveProxy, ProxyConfig, RefreshRule};
use mutcon::traces::transform::scale_time;
use mutcon::traces::NamedTrace;

fn main() -> std::io::Result<()> {
    // Compress ~49.5 h of CNN/FN and ~45 h of NYT/AP into a few seconds.
    let story = scale_time(&NamedTrace::CnnFn.generate(), 1e-5).expect("positive factor");
    let wire = scale_time(&NamedTrace::NytAp.generate(), 1e-5).expect("positive factor");
    println!(
        "replaying {} ({} updates) and {} ({} updates) at 100000x",
        story.name(),
        story.update_count(),
        wire.name(),
        wire.update_count()
    );

    let origin = LiveOrigin::builder()
        .object("/news/cnn-fn.html", story)
        .object("/news/nyt-ap.html", wire)
        .with_history(true)
        .start()?;
    println!("origin  listening on {}", origin.local_addr());

    // Δ = 10 min of trace time = 6 ms of wall time at this compression;
    // use a slightly larger wall-clock Δ so the refresher isn't saturated.
    let delta = Duration::from_millis(60);
    let proxy = LiveProxy::start(ProxyConfig {
        rules: vec![
            RefreshRule::new("/news/cnn-fn.html", delta),
            RefreshRule::new("/news/nyt-ap.html", delta),
        ],
        group: Some(GroupRule {
            delta: Duration::from_millis(30),
            policy: MtPolicy::TriggeredPolls,
        }),
        ..ProxyConfig::new(origin.local_addr())
    })?;
    println!("proxy   listening on {}\n", proxy.local_addr());

    // A client hitting the proxy once per "hour" of trace time.
    let client = HttpClient::new();
    for tick in 0..8 {
        std::thread::sleep(StdDuration::from_millis(250));
        let resp = client.get(proxy.local_addr(), "/news/cnn-fn.html", None)?;
        let stamp = last_modified_ms(&resp)
            .map(|t| t.as_millis().to_string())
            .unwrap_or_else(|| "?".into());
        println!(
            "t+{:>4}ms  GET /news/cnn-fn.html -> {} ({}, last-modified-ms {})",
            (tick + 1) * 250,
            resp.status(),
            resp.headers().get("x-cache").unwrap_or("-"),
            stamp
        );
    }

    let stats = proxy.stats();
    println!(
        "\nproxy stats: {} polls ({} triggered by the Mt coordinator), \
         {} refreshes, {} hits, {} misses, {} errors",
        stats.polls, stats.triggered, stats.refreshes, stats.hits, stats.misses, stats.errors
    );
    println!(
        "origin served {} requests; every consistency decision above ran\n\
         over real HTTP/TCP with the same algorithms as the simulator.",
        origin.request_count()
    );
    Ok(())
}
