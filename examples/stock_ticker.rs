//! A financial ticker comparing two stock prices — the value-domain
//! scenario of §4: keep the *difference* of the cached prices within δ of
//! the difference at the server (Mv-consistency).
//!
//! Runs both §4.2 approaches (virtual object vs partitioned tolerance)
//! on the paper's calibrated AT&T/Yahoo workloads.
//!
//! ```sh
//! cargo run --example stock_ticker
//! ```

use mutcon::core::functions::ValueFunction;
use mutcon::core::mutual::value::{PartitionedConfig, VirtualObjectConfig};
use mutcon::core::object::ObjectId;
use mutcon::core::time::{Duration, Timestamp};
use mutcon::core::value::Value;
use mutcon::proxy::drivers::{run_value_pair, ValuePairPolicy};
use mutcon::proxy::metrics;
use mutcon::proxy::origin::OriginServer;
use mutcon::traces::NamedTrace;

fn main() {
    // Yahoo first so f = Yahoo − AT&T is positive, as plotted in Fig 8.
    let yahoo = NamedTrace::Yahoo.generate();
    let att = NamedTrace::Att.generate();
    println!(
        "workloads: {} ({} ticks), {} ({} ticks) over {:.1} h",
        yahoo.name(),
        yahoo.update_count(),
        att.name(),
        att.update_count(),
        att.duration().as_secs_f64() / 3_600.0
    );

    let ids = [ObjectId::new(yahoo.name()), ObjectId::new(att.name())];
    let mut origin = OriginServer::new();
    origin.host(ids[0].clone(), yahoo.clone());
    origin.host(ids[1].clone(), att.clone());
    let until = Timestamp::ZERO + att.duration();

    let delta = Value::new(0.6); // the paper's Figure 8 tolerance
    let f = ValueFunction::Difference;
    println!("requirement: |f(S) − f(P)| < δ = ${delta} for f = difference\n");
    println!(
        "{:<22} {:>7} {:>14} {:>14}",
        "approach", "polls", "Mv fidelity", "out-of-sync"
    );

    let ttr_bounds = (Duration::from_secs(10), Duration::from_mins(10));

    let virtual_cfg = VirtualObjectConfig::builder(f, delta)
        .ttr_bounds(ttr_bounds.0, ttr_bounds.1)
        .build()
        .expect("valid policy parameters");
    let partitioned_cfg = PartitionedConfig::builder(f, delta)
        .ttr_bounds(ttr_bounds.0, ttr_bounds.1)
        .build()
        .expect("valid policy parameters");

    for (label, policy) in [
        ("adaptive (virtual f)", ValuePairPolicy::Virtual(virtual_cfg)),
        ("partitioned (δa+δb=δ)", ValuePairPolicy::Partitioned(partitioned_cfg)),
    ] {
        let out = run_value_pair(&origin, &ids[0], &ids[1], &policy, until);
        let stats = metrics::mutual_value(
            &yahoo, &out.log_a, &att, &out.log_b, f, delta, until,
        );
        println!(
            "{label:<22} {:>7} {:>14.3} {:>11.1} s",
            stats.polls(),
            stats.fidelity_by_violations(),
            stats.out_of_sync().as_secs_f64()
        );
    }

    println!(
        "\nThe partitioned approach tracks the server difference more tightly\n\
         (higher fidelity) at the cost of more polls — the Figure 7 trade-off.\n\
         It is only available because the difference function decomposes\n\
         per-object (ValueFunction::supports_partitioning)."
    );
}
