//! A breaking-news site: a story page with embedded photos, kept
//! *mutually* consistent (§1's motivating example).
//!
//! The related-object group is deduced syntactically by parsing the HTML
//! for embedded links (§5.2), then the three Mt approaches of §3.2 are
//! compared on the same workload.
//!
//! ```sh
//! cargo run --example news_site
//! ```

use mutcon::core::limd::LimdConfig;
use mutcon::core::mutual::temporal::MtPolicy;
use mutcon::core::object::ObjectId;
use mutcon::core::time::Duration;
use mutcon::depgraph::GroupDeducer;
use mutcon::proxy::drivers::{run_temporal, MutualSetup, TemporalPolicy, TemporalSimConfig};
use mutcon::proxy::metrics;
use mutcon::proxy::origin::OriginServer;
use mutcon::traces::generator::NewsTraceBuilder;

const STORY_HTML: &str = r#"<html>
  <head><link rel="stylesheet" href="/style/news.css"></head>
  <body>
    <h1>Breaking: markets move</h1>
    <img src="chart.png">
    <img src="reporter.jpg">
    <a href="/archive.html">archive</a>
  </body>
</html>"#;

fn main() {
    // 1. Deduce the related-object group from the page itself.
    let story = ObjectId::new("/news/story.html");
    let mut deducer = GroupDeducer::new();
    let embedded = deducer.add_document(story.clone(), STORY_HTML);
    let registry = deducer.into_registry();
    let members: Vec<ObjectId> = std::iter::once(story.clone())
        .chain(registry.related(&story).cloned())
        .collect();
    println!("deduced {embedded} embedded objects; group:");
    for m in &members {
        println!("  {m}");
    }

    // 2. Give every member an update stream: the story changes fast, the
    //    chart almost as fast, the stylesheet and portrait rarely.
    let mut origin = OriginServer::new();
    let updates_for = |path: &str| match path {
        "/news/story.html" => 120,
        "/news/chart.png" => 90,
        "/news/reporter.jpg" => 6,
        _ => 3,
    };
    for (i, m) in members.iter().enumerate() {
        let trace = NewsTraceBuilder::new(m.as_str(), Duration::from_hours(24), updates_for(m.as_str()))
            .seed(42 + i as u64)
            .build()
            .expect("valid generator parameters");
        origin.host(m.clone(), trace);
    }
    let until = mutcon::core::time::Timestamp::ZERO + Duration::from_hours(24);

    // 3. Compare the three §3.2 approaches at Δ = 10 min, δ = 5 min.
    let delta = Duration::from_mins(10);
    let mutual_delta = Duration::from_mins(5);
    let limd = LimdConfig::builder(delta)
        .ttr_max(Duration::from_mins(60))
        .build()
        .expect("valid LIMD parameters");
    println!("\nΔ = {delta}, δ = {mutual_delta}; pairwise fidelity vs the story page:\n");
    println!(
        "{:<22} {:>11} {:>9} {:>26}",
        "policy", "total polls", "extra", "min pairwise Mt fidelity"
    );

    for (label, policy) in [
        ("baseline LIMD", None),
        ("triggered polls", Some(MtPolicy::TriggeredPolls)),
        ("rate heuristic", Some(MtPolicy::HEURISTIC)),
    ] {
        let out = run_temporal(
            &origin,
            &members,
            &TemporalSimConfig {
                policy: TemporalPolicy::Limd(limd),
                mutual: policy.map(|p| MutualSetup {
                    delta: mutual_delta,
                    policy: p,
                }),
                until,
            },
        );
        let min_fidelity = members[1..]
            .iter()
            .map(|m| {
                metrics::mutual_temporal(
                    origin.trace(&story).expect("hosted"),
                    &out.logs[&story],
                    origin.trace(m).expect("hosted"),
                    &out.logs[m],
                    mutual_delta,
                    until,
                )
                .fidelity_by_violations()
            })
            .fold(1.0f64, f64::min);
        println!(
            "{label:<22} {:>11} {:>9} {:>26.3}",
            out.total_polls(),
            out.total_triggered(),
            min_fidelity
        );
    }

    println!(
        "\nTriggered polls buy perfect mutual consistency with extra polls;\n\
         the heuristic skips slow-changing objects (the portrait photo) and\n\
         keeps most of the fidelity at a fraction of the extra cost (§6.2.2)."
    );
}
